#include "workload/server_workloads.hh"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/args.hh"
#include "workload/workload_registry.hh"

namespace nvmcache {

namespace {

constexpr std::uint64_t kKB = 1024;
constexpr std::uint64_t kLine = 64; ///< bytes per key / cache line

// Typed readers over the registry's merged canonical parameter map
// (values are pre-validated, so these cannot fail on registry-driven
// input; the named what keeps diagnostics useful for direct callers).
std::string
what(const std::string &kind, const std::string &key)
{
    return "workload '" + kind + "' parameter '" + key + "'";
}

double
num(const WorkloadParams &p, const std::string &kind,
    const std::string &key)
{
    return ArgParser::parseNum(what(kind, key), p.at(key));
}

std::vector<double>
numList(const WorkloadParams &p, const std::string &kind,
        const std::string &key)
{
    return ArgParser::parseNumList(what(kind, key), p.at(key));
}

std::uint64_t
count(const WorkloadParams &p, const std::string &kind,
      const std::string &key)
{
    const std::uint64_t v = parseCount(what(kind, key), p.at(key));
    if (v == 0)
        throw std::runtime_error(what(kind, key) + ": must be > 0");
    return v;
}

std::uint32_t
u32(const WorkloadParams &p, const std::string &kind,
    const std::string &key)
{
    return ArgParser::parseU32(what(kind, key), p.at(key));
}

void
checkRatio(const std::string &kind, const std::string &key, double v)
{
    if (v < 0.0 || v > 1.0)
        throw std::runtime_error(what(kind, key) +
                                 ": must be in [0, 1], got " +
                                 std::to_string(v));
}

void
checkSkew(const std::string &kind, const std::string &key, double v)
{
    if (!(v > 0.0))
        throw std::runtime_error(what(kind, key) +
                                 ": must be > 0, got " +
                                 std::to_string(v));
}

void
checkWarm(const std::string &kind, double v)
{
    if (v < 0.0 || v >= 1.0)
        throw std::runtime_error(what(kind, "warm") +
                                 ": must be in [0, 1), got " +
                                 std::to_string(v));
}

/**
 * Broadcast a per-phase/per-tenant list to length @p n: a length-1
 * list repeats; anything else must match exactly.
 */
std::vector<double>
broadcast(const std::string &kind, const std::string &key,
          std::vector<double> list, std::size_t n)
{
    if (list.size() == n)
        return list;
    if (list.size() == 1)
        return std::vector<double>(n, list[0]);
    throw std::runtime_error(
        what(kind, key) + ": expected 1 or " + std::to_string(n) +
        " entries, got " + std::to_string(list.size()));
}

StreamConfig
zipfStream(std::uint64_t bytes, double skew, double weight,
           std::int32_t regionId)
{
    StreamConfig s;
    s.kind = StreamConfig::Kind::Zipf;
    s.regionBytes = bytes;
    s.zipfSkew = skew;
    s.weight = weight;
    s.regionId = regionId;
    return s;
}

/**
 * One KV traffic profile: GET/SET split by @p readRatio, 80% of each
 * kind hitting the hashed key space (Zipf popularity, the ranks
 * scattered across the region by the generator's hash scramble) and
 * 20% hot connection/session state. GETs and SETs alias the same two
 * regions via regionId, so written keys are re-read — the YCSB shape.
 */
MixProfile
kvProfile(double readRatio, double skew, std::uint64_t keyBytes,
          std::int32_t keyRegion, std::int32_t stackRegion)
{
    MixProfile p;
    p.loadFraction = readRatio;
    p.storeFraction = 1.0 - readRatio;
    const StreamConfig stack =
        zipfStream(64 * kKB, 0.9, 0.2, stackRegion);
    const StreamConfig keys =
        zipfStream(keyBytes, skew, 0.8, keyRegion);
    p.loads.streams = {stack, keys};
    p.stores.streams = {stack, keys};
    return p;
}

BenchmarkSpec
serverSpecBase(const std::string &description)
{
    BenchmarkSpec b;
    b.suite = "server";
    b.description = description;
    b.paperMpki = 0.0; // no Table V row: measured, not published
    b.prismCompatible = true;
    b.gen.meanGap = 2.0;
    return b;
}

BenchmarkSpec
buildKv(const WorkloadParams &p)
{
    const double readRatio = num(p, "kv", "readRatio");
    const double skew = num(p, "kv", "skew");
    const double warm = num(p, "kv", "warm");
    const std::uint64_t keys = count(p, "kv", "keys");
    const std::uint64_t ops = count(p, "kv", "ops");
    checkRatio("kv", "readRatio", readRatio);
    checkSkew("kv", "skew", skew);
    checkWarm("kv", warm);

    BenchmarkSpec b = serverSpecBase(
        "Zipf KV cache: GET/SET over a hashed key space");
    b.gen.totalAccesses = ops;
    b.gen.seed = u32(p, "kv", "seed");
    b.gen.warmupFraction = warm;
    const MixProfile mix = kvProfile(readRatio, skew, keys * kLine,
                                     /*keyRegion=*/0,
                                     /*stackRegion=*/1);
    b.gen.loadFraction = mix.loadFraction;
    b.gen.storeFraction = mix.storeFraction;
    b.gen.loads = mix.loads;
    b.gen.stores = mix.stores;
    return b;
}

BenchmarkSpec
buildPhased(const WorkloadParams &p)
{
    const std::vector<double> rr = numList(p, "phased", "readRatios");
    const std::vector<double> sk = numList(p, "phased", "skews");
    const double warm = num(p, "phased", "warm");
    const std::uint64_t keys = count(p, "phased", "keys");
    const std::uint64_t ops = count(p, "phased", "ops");
    checkWarm("phased", warm);

    const std::size_t phases = std::max(rr.size(), sk.size());
    const std::vector<double> readRatios =
        broadcast("phased", "readRatios", rr, phases);
    const std::vector<double> skews =
        broadcast("phased", "skews", sk, phases);

    BenchmarkSpec b = serverSpecBase(
        "KV phase schedule: read-ratio/skew shifts over one key space");
    b.gen.totalAccesses = ops;
    b.gen.seed = u32(p, "phased", "seed");
    b.gen.warmupFraction = warm;
    for (std::size_t i = 0; i < phases; ++i) {
        checkRatio("phased", "readRatios", readRatios[i]);
        checkSkew("phased", "skews", skews[i]);
        // regionId 0/1 recur across phases: every phase revisits the
        // same key space and session state, only the mix shifts.
        b.gen.phases.push_back(kvProfile(readRatios[i], skews[i],
                                         keys * kLine,
                                         /*keyRegion=*/0,
                                         /*stackRegion=*/1));
    }
    return b;
}

BenchmarkSpec
buildTenants(const WorkloadParams &p)
{
    const std::uint32_t n = u32(p, "tenants", "n");
    if (n == 0)
        throw std::runtime_error(what("tenants", "n") +
                                 ": must be > 0");
    const std::vector<double> readRatios = broadcast(
        "tenants", "readRatios", numList(p, "tenants", "readRatios"),
        n);
    const std::vector<double> skews = broadcast(
        "tenants", "skews", numList(p, "tenants", "skews"), n);
    const double warm = num(p, "tenants", "warm");
    const std::uint64_t keys = count(p, "tenants", "keys");
    const std::uint64_t ops = count(p, "tenants", "ops");
    checkWarm("tenants", warm);

    BenchmarkSpec b = serverSpecBase(
        "co-scheduled KV tenants sharing the LLC");
    b.multiThreaded = true;
    b.defaultThreads = n;
    b.gen.totalAccesses = ops;
    b.gen.seed = u32(p, "tenants", "seed");
    b.gen.warmupFraction = warm;
    b.gen.perThreadStats = true;
    for (std::uint32_t i = 0; i < n; ++i) {
        checkRatio("tenants", "readRatios", readRatios[i]);
        checkSkew("tenants", "skews", skews[i]);
        // Distinct regionIds per tenant: tenant i's GETs and SETs
        // share tenant i's key space and nothing else — isolation is
        // only broken where it should be, at the shared LLC.
        b.gen.tenantMixes.push_back(
            kvProfile(readRatios[i], skews[i], keys * kLine,
                      /*keyRegion=*/std::int32_t(2 * i),
                      /*stackRegion=*/std::int32_t(2 * i + 1)));
    }
    return b;
}

} // namespace

void
registerServerWorkloads(WorkloadRegistry &reg)
{
    using Type = WorkloadParamDef::Type;

    reg.add(WorkloadKindDef{
        "kv",
        "server",
        "Zipf KV cache: GET/SET over a hashed key space",
        {
            {"keys", Type::Count, "256K",
             "distinct 64 B keys in the hashed key space"},
            {"ops", Type::Count, "2M", "total accesses"},
            {"readRatio", Type::Num, "0.95",
             "GET fraction (SETs take the rest)"},
            {"seed", Type::U32, "1000", "generator seed"},
            {"skew", Type::Num, "0.99", "Zipf popularity exponent"},
            {"warm", Type::Num, "0.25",
             "leading warm-up fraction (fills the cache; excluded "
             "from characterization)"},
        },
        buildKv,
    });

    reg.add(WorkloadKindDef{
        "phased",
        "server",
        "KV phase schedule: read-ratio/skew shifts over one key space",
        {
            {"keys", Type::Count, "256K",
             "distinct 64 B keys (all phases share them)"},
            {"ops", Type::Count, "2M",
             "total accesses, split evenly across phases"},
            {"readRatios", Type::NumList, "0.95,0.5",
             "per-phase GET fraction (length 1 broadcasts)"},
            {"seed", Type::U32, "1100", "generator seed"},
            {"skews", Type::NumList, "1.2,0.6",
             "per-phase Zipf exponent (length 1 broadcasts)"},
            {"warm", Type::Num, "0",
             "leading warm-up fraction (fills the cache; excluded "
             "from characterization)"},
        },
        buildPhased,
    });

    reg.add(WorkloadKindDef{
        "tenants",
        "server",
        "co-scheduled KV tenants sharing the LLC",
        {
            {"keys", Type::Count, "64K",
             "distinct 64 B keys per tenant (private key spaces)"},
            {"n", Type::U32, "4", "tenant count (= threads)"},
            {"ops", Type::Count, "2M",
             "total accesses across all tenants"},
            {"readRatios", Type::NumList, "0.95",
             "per-tenant GET fraction (length 1 broadcasts)"},
            {"seed", Type::U32, "1200", "generator seed"},
            {"skews", Type::NumList, "0.99",
             "per-tenant Zipf exponent (length 1 broadcasts)"},
            {"warm", Type::Num, "0.25",
             "leading warm-up fraction (fills the cache; excluded "
             "from characterization)"},
        },
        buildTenants,
    });
}

} // namespace nvmcache
