/**
 * @file
 * Composable synthetic memory-trace generators.
 *
 * Each benchmark from the paper's Table V is modeled as a weighted
 * mixture of access streams per access kind (load / store / ifetch):
 *
 *  - Zipf       : skewed reuse over a hot region — controls the 90%
 *                 footprint and pulls entropy below log2(region);
 *  - Uniform    : uniform traffic over a (usually large) region —
 *                 controls unique footprint and LLC stress;
 *  - Sequential : striding streams — high spatial locality, low
 *                 local entropy, prefetch-friendly sweeps;
 *  - Chase      : pseudo-random pointer chase over a region — maximal
 *                 miss behaviour with bounded footprint.
 *
 * Generators are deterministic per seed, so every experiment is
 * bit-reproducible; thread variants derive per-thread seeds and
 * offset their private regions.
 */

#ifndef NVMCACHE_WORKLOAD_GENERATORS_HH
#define NVMCACHE_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"
#include "util/rng.hh"

namespace nvmcache {

/** One address stream inside a mixture. */
struct StreamConfig
{
    enum class Kind
    {
        Zipf,
        Uniform,
        Sequential,
        Chase
    };

    Kind kind = Kind::Uniform;
    double weight = 1.0;        ///< relative selection probability
    std::uint64_t regionBytes = 1 << 20;
    double zipfSkew = 0.8;      ///< Zipf only
    std::uint32_t stride = 64;  ///< Sequential only
    /**
     * Shared streams use the same region in every thread (true
     * sharing); private streams are offset per thread.
     */
    bool shared = false;
};

/** Mixture of streams for one access kind. */
struct AccessMix
{
    std::vector<StreamConfig> streams;
};

/** Full generator configuration for one benchmark. */
struct GeneratorConfig
{
    std::uint64_t totalAccesses = 1'000'000; ///< across all threads
    double loadFraction = 0.70;
    double storeFraction = 0.28; ///< remainder is ifetch traffic
    double meanGap = 2.0; ///< mean non-memory instructions per access

    AccessMix loads;
    AccessMix stores;
    AccessMix ifetches;

    std::uint64_t seed = 1;
};

/**
 * One thread's deterministic synthetic trace.
 */
class SyntheticTrace final : public TraceSource
{
  public:
    /**
     * @param cfg       Benchmark generator configuration.
     * @param threadId  This thread's index in [0, numThreads).
     * @param numThreads Total threads the work is split across.
     */
    SyntheticTrace(const GeneratorConfig &cfg, std::uint32_t threadId,
                   std::uint32_t numThreads);

    bool next(MemAccess &out) override;
    void reset() override;

    /**
     * Generate up to out.size() accesses (the batched counterpart of
     * next(), same sequence); returns the count produced, 0 at end of
     * trace. Trace recording drains the generator through this.
     */
    std::size_t fill(std::span<MemAccess> out);

    /**
     * Times the stream structures (regions, samplers) have been
     * built. Stays at 1 across reset(), which only rewinds cursors —
     * a regression guard against reallocating per reset.
     */
    std::uint32_t streamBuilds() const { return streamBuilds_; }

  private:
    struct StreamState
    {
        StreamConfig cfg;
        std::uint64_t base = 0;     ///< region base address
        std::uint64_t lines = 0;    ///< region size in 64 B lines
        std::uint64_t seqPos = 0;   ///< Sequential cursor
        std::uint64_t chasePos = 0; ///< Chase cursor
        std::unique_ptr<ZipfSampler> zipf;
        std::uint64_t scramble = 1; ///< odd multiplier for Zipf ranks
    };

    struct KindState
    {
        std::vector<StreamState> streams;
        std::unique_ptr<DiscreteSampler> pick;
    };

    void buildStreams();
    std::uint64_t draw(KindState &ks);

    GeneratorConfig cfg_;
    std::uint32_t threadId_;
    std::uint32_t numThreads_;
    std::uint64_t length_; ///< accesses this thread emits

    Rng rng_;
    std::uint64_t emitted_ = 0;
    KindState loads_, stores_, ifetches_;

    /**
     * Effective kind fractions: an empty mixture emits nothing, so
     * its configured share falls through to loads. Renormalized to
     * sum to exactly 1 at build time (fatal if the configured store +
     * ifetch shares exceed 1).
     */
    double effLoad_ = 1.0;
    double effStore_ = 0.0;
    double effIfetch_ = 0.0;

    std::uint32_t streamBuilds_ = 0;
};

/**
 * Build one trace per thread for a benchmark config. The caller owns
 * the traces; raw pointers into the returned vector can be handed to
 * System::run.
 */
std::vector<std::unique_ptr<SyntheticTrace>>
buildThreadTraces(const GeneratorConfig &cfg, std::uint32_t numThreads);

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_GENERATORS_HH
