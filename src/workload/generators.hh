/**
 * @file
 * Composable synthetic memory-trace generators.
 *
 * Each benchmark from the paper's Table V is modeled as a weighted
 * mixture of access streams per access kind (load / store / ifetch):
 *
 *  - Zipf       : skewed reuse over a hot region — controls the 90%
 *                 footprint and pulls entropy below log2(region);
 *  - Uniform    : uniform traffic over a (usually large) region —
 *                 controls unique footprint and LLC stress;
 *  - Sequential : striding streams — high spatial locality, low
 *                 local entropy, prefetch-friendly sweeps;
 *  - Chase      : pseudo-random pointer chase over a region — maximal
 *                 miss behaviour with bounded footprint.
 *
 * Generators are deterministic per seed, so every experiment is
 * bit-reproducible; thread variants derive per-thread seeds and
 * offset their private regions.
 */

#ifndef NVMCACHE_WORKLOAD_GENERATORS_HH
#define NVMCACHE_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hh"
#include "util/rng.hh"

namespace nvmcache {

/** One address stream inside a mixture. */
struct StreamConfig
{
    enum class Kind
    {
        Zipf,
        Uniform,
        Sequential,
        Chase
    };

    Kind kind = Kind::Uniform;
    double weight = 1.0;        ///< relative selection probability
    std::uint64_t regionBytes = 1 << 20;
    double zipfSkew = 0.8;      ///< Zipf only
    std::uint32_t stride = 64;  ///< Sequential only
    /**
     * Shared streams use the same region in every thread (true
     * sharing); private streams are offset per thread.
     */
    bool shared = false;
    /**
     * Streams with the same non-negative id alias one region (the
     * first such stream allocates it; the rest must agree on
     * regionBytes and shared). This is how the server workloads make
     * GET and SET traffic — or every phase of a phased schedule —
     * hit one key space. -1 (the default) allocates privately.
     */
    std::int32_t regionId = -1;
};

/** Mixture of streams for one access kind. */
struct AccessMix
{
    std::vector<StreamConfig> streams;
};

/**
 * One complete traffic profile: kind fractions plus the three
 * per-kind mixtures. GeneratorConfig embeds one implicitly (its
 * top-level fields); phased and multi-tenant workloads carry several.
 */
struct MixProfile
{
    double loadFraction = 0.70;
    double storeFraction = 0.28; ///< remainder is ifetch traffic
    AccessMix loads;
    AccessMix stores;
    AccessMix ifetches;
};

/** Full generator configuration for one benchmark. */
struct GeneratorConfig
{
    std::uint64_t totalAccesses = 1'000'000; ///< across all threads
    double loadFraction = 0.70;
    double storeFraction = 0.28; ///< remainder is ifetch traffic
    double meanGap = 2.0; ///< mean non-memory instructions per access

    AccessMix loads;
    AccessMix stores;
    AccessMix ifetches;

    std::uint64_t seed = 1;

    /**
     * Phase schedule: when non-empty, the top-level mixtures are
     * ignored and each thread's access stream is divided into
     * phases.size() equal access-count segments, segment i drawing
     * from phases[i] (diurnal / phase-shift behavior). Every phase's
     * streams are laid out once at build time; use regionId to make
     * phases revisit the same data.
     */
    std::vector<MixProfile> phases;

    /**
     * Per-tenant profiles: when non-empty, thread t draws from
     * tenantMixes[t % size()] for its whole stream (co-scheduled
     * tenants sharing the LLC). Mutually exclusive with phases.
     */
    std::vector<MixProfile> tenantMixes;

    /**
     * Leading fraction of each thread's accesses that is cache
     * warm-up (e.g. a KV store's load phase). Warm accesses simulate
     * normally — they populate the cache hierarchy — but are excluded
     * from workload characterization (see characterize()); must be in
     * [0, 1).
     */
    double warmupFraction = 0.0;

    /**
     * Export per-thread LLC hit/miss/writeback counters into the
     * run's stats detail under "sim.tenant<i>." (set by the tenants
     * workload family; off for everything else so existing reports
     * are byte-stable).
     */
    bool perThreadStats = false;
};

/**
 * Per-thread warm-up access counts for @p cfg split over
 * @p numThreads: entry t is how many leading accesses of thread t's
 * trace are warm-up (matching SyntheticTrace::warmupAccesses()).
 * All-zero when cfg.warmupFraction == 0.
 */
std::vector<std::uint64_t> warmupSplit(const GeneratorConfig &cfg,
                                       std::uint32_t numThreads);

/**
 * One thread's deterministic synthetic trace.
 */
class SyntheticTrace final : public TraceSource
{
  public:
    /**
     * @param cfg       Benchmark generator configuration.
     * @param threadId  This thread's index in [0, numThreads).
     * @param numThreads Total threads the work is split across.
     */
    SyntheticTrace(const GeneratorConfig &cfg, std::uint32_t threadId,
                   std::uint32_t numThreads);

    bool next(MemAccess &out) override;
    void reset() override;

    /**
     * Generate up to out.size() accesses (the batched counterpart of
     * next(), same sequence); returns the count produced, 0 at end of
     * trace. Trace recording drains the generator through this.
     */
    std::size_t fill(std::span<MemAccess> out);

    /**
     * Times the stream structures (regions, samplers) have been
     * built. Stays at 1 across reset(), which only rewinds cursors —
     * a regression guard against reallocating per reset.
     */
    std::uint32_t streamBuilds() const { return streamBuilds_; }

    /**
     * Leading accesses of this thread's trace that are warm-up
     * (floor(cfg.warmupFraction * this thread's length)).
     */
    std::uint64_t warmupAccesses() const { return warmLength_; }

  private:
    struct StreamState
    {
        StreamConfig cfg;
        std::uint64_t base = 0;     ///< region base address
        std::uint64_t lines = 0;    ///< region size in 64 B lines
        std::uint64_t seqPos = 0;   ///< Sequential cursor
        std::uint64_t chasePos = 0; ///< Chase cursor
        std::unique_ptr<ZipfSampler> zipf;
        std::uint64_t scramble = 1; ///< odd multiplier for Zipf ranks
    };

    struct KindState
    {
        std::vector<StreamState> streams;
        std::unique_ptr<DiscreteSampler> pick;
    };

    /**
     * One active traffic profile: the three kind mixtures with their
     * effective kind fractions (renormalized so an empty mixture's
     * share falls through to loads and the three sum to exactly 1).
     */
    struct MixSet
    {
        KindState loads, stores, ifetches;
        double effLoad = 1.0;
        double effStore = 0.0;
        double effIfetch = 0.0;
    };

    void buildStreams();
    std::uint64_t draw(KindState &ks);

    GeneratorConfig cfg_;
    std::uint32_t threadId_;
    std::uint32_t numThreads_;
    std::uint64_t length_;     ///< accesses this thread emits
    std::uint64_t warmLength_ = 0; ///< leading warm-up accesses

    Rng rng_;
    std::uint64_t emitted_ = 0;

    /**
     * Active profiles: one entry normally (the config's top-level
     * mixtures, or this thread's tenant profile), one per phase for
     * phased configs.
     */
    std::vector<MixSet> sets_;

    std::uint32_t streamBuilds_ = 0;
};

/**
 * Build one trace per thread for a benchmark config. The caller owns
 * the traces; raw pointers into the returned vector can be handed to
 * System::run.
 */
std::vector<std::unique_ptr<SyntheticTrace>>
buildThreadTraces(const GeneratorConfig &cfg, std::uint32_t numThreads);

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_GENERATORS_HH
