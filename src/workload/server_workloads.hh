/**
 * @file
 * Parameterized datacenter server-traffic workload families (ROADMAP
 * item 3): the "modern use case behavior" the paper's title promises
 * but its Table V (SPEC/PARSEC/NPB) does not cover.
 *
 *  - kv      : YCSB-style key-value cache traffic — Zipf key
 *              popularity (skew knob) over a hashed large key space,
 *              GET/SET split by a read-ratio knob, with a leading
 *              warm-up fraction that fills the cache but is excluded
 *              from workload characterization;
 *  - phased  : a schedule of kv-style sub-mixes switched at
 *              access-count boundaries (diurnal read-ratio / skew
 *              shifts over one key space);
 *  - tenants : n co-scheduled kv tenants on n threads sharing the
 *              LLC, deterministically interleaved by the simulator's
 *              min-local-time scheduler, with per-tenant LLC
 *              hit/miss/writeback stats exported under
 *              "sim.tenant<i>.".
 *
 * All three are registered as parameterized kinds on the
 * WorkloadRegistry ("kv:skew=0.99,readRatio=0.95,keys=64M") and flow
 * through the unchanged replay/store/trace layers.
 */

#ifndef NVMCACHE_WORKLOAD_SERVER_WORKLOADS_HH
#define NVMCACHE_WORKLOAD_SERVER_WORKLOADS_HH

namespace nvmcache {

class WorkloadRegistry;

/** Register the kv / phased / tenants kinds on @p reg. */
void registerServerWorkloads(WorkloadRegistry &reg);

} // namespace nvmcache

#endif // NVMCACHE_WORKLOAD_SERVER_WORKLOADS_HH
