#include "workload/suite.hh"

#include "util/logging.hh"
#include "workload/workload_registry.hh"

namespace nvmcache {

namespace {

using K = StreamConfig::Kind;

StreamConfig
zipf(std::uint64_t bytes, double skew, double weight, bool shared = false)
{
    StreamConfig s;
    s.kind = K::Zipf;
    s.regionBytes = bytes;
    s.zipfSkew = skew;
    s.weight = weight;
    s.shared = shared;
    return s;
}

StreamConfig
uniform(std::uint64_t bytes, double weight, bool shared = false)
{
    StreamConfig s;
    s.kind = K::Uniform;
    s.regionBytes = bytes;
    s.weight = weight;
    s.shared = shared;
    return s;
}

StreamConfig
seq(std::uint64_t bytes, std::uint32_t stride, double weight,
    bool shared = false)
{
    StreamConfig s;
    s.kind = K::Sequential;
    s.regionBytes = bytes;
    s.stride = stride;
    s.weight = weight;
    s.shared = shared;
    return s;
}

StreamConfig
chase(std::uint64_t bytes, double weight, bool shared = false)
{
    StreamConfig s;
    s.kind = K::Chase;
    s.regionBytes = bytes;
    s.weight = weight;
    s.shared = shared;
    return s;
}

constexpr std::uint64_t kKB = 1024;
constexpr std::uint64_t kMB = 1024 * 1024;

PaperFeatures
feats(double hrg, double hrl, double hwg, double hwl, double runiq_m,
      double wuniq_m, double ft90r_k, double ft90w_k, double rtot_g,
      double wtot_g)
{
    PaperFeatures f;
    f.globalReadEntropy = hrg;
    f.localReadEntropy = hrl;
    f.globalWriteEntropy = hwg;
    f.localWriteEntropy = hwl;
    f.uniqueReads = runiq_m * 1e6;
    f.uniqueWrites = wuniq_m * 1e6;
    f.footprint90Read = ft90r_k * 1e3;
    f.footprint90Write = ft90w_k * 1e3;
    f.totalReads = rtot_g * 1e9;
    f.totalWrites = wtot_g * 1e9;
    return f;
}

/**
 * Generator tuning notes.
 *
 * Every workload mixes three roles per access kind:
 *  - an "L1-hot" stream (tens of KB, high skew): the stack/register
 *    spill traffic that gives real programs their high L1 hit rates;
 *  - an "LLC-band" stream (0.5-32 MB Zipf): working-set traffic that
 *    produces LLC *hits* (so LLC read latency/energy matters) plus a
 *    capacity-sensitive miss tail (so fixed-area capacity matters);
 *  - a "cold" stream (big Uniform/Chase, or Sequential sweeps): each
 *    draw (or each 64 B line of a sweep) misses the LLC, setting the
 *    mpki floor. Its weight is chosen analytically from the paper's
 *    Table V mpki: misses/access ~= mpki/1000 * (meanGap + 1).
 */
std::vector<BenchmarkSpec>
buildSuite()
{
    std::vector<BenchmarkSpec> v;
    std::uint64_t seed = 100;

    auto add = [&](BenchmarkSpec spec) {
        spec.gen.seed = ++seed;
        v.push_back(std::move(spec));
    };

    // ----- SPEC cpu2006 (single-threaded) ---------------------------
    {
        BenchmarkSpec b;
        b.name = "bzip2";
        b.suite = "cpu2006";
        b.description = "Compression/Decompression, s.t.";
        b.paperMpki = 142.69;
        b.paper = feats(18.03, 10.23, 11.72, 5.90, 5.99, 5.88, 2505.38,
                        750.86, 4.30, 1.47);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.72;
        b.gen.storeFraction = 0.28;
        b.gen.meanGap = 2.0;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.30),
                               zipf(1 * kMB, 0.85, 0.40),
                               chase(24 * kMB, 0.26)};
        b.gen.stores.streams = {zipf(512 * kKB, 0.85, 0.68),
                                uniform(12 * kMB, 0.32)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "gamess";
        b.suite = "cpu2006";
        b.description = "Quantum computations, s.t.";
        b.paperMpki = 12.83;
        b.prismCompatible = false;
        b.gen.totalAccesses = 2'000'000;
        b.gen.loadFraction = 0.73;
        b.gen.storeFraction = 0.27;
        b.gen.meanGap = 2.2;
        b.gen.loads.streams = {zipf(48 * kKB, 0.9, 0.45),
                               zipf(1 * kMB, 0.85, 0.525),
                               uniform(6 * kMB, 0.025)};
        b.gen.stores.streams = {zipf(256 * kKB, 0.85, 0.98),
                                uniform(6 * kMB, 0.02)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "GemsFDTD";
        b.suite = "cpu2006";
        b.description = "Maxwell solver 3D, s.t.";
        b.paperMpki = 12.56;
        b.paper = feats(19.92, 13.62, 22.27, 14.99, 116.88, 143.63,
                        76576.59, 113183.50, 1.30, 0.70);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.62;
        b.gen.storeFraction = 0.38;
        b.gen.meanGap = 2.0;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.40),
                               seq(48 * kMB, 8, 0.155),
                               zipf(768 * kKB, 0.85, 0.42)};
        b.gen.stores.streams = {seq(64 * kMB, 8, 0.33),
                                zipf(256 * kKB, 0.85, 0.62)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "gobmk";
        b.suite = "cpu2006";
        b.description = "Plays Go and analyzes, s.t.";
        b.paperMpki = 38.08;
        b.prismCompatible = false;
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.60;
        b.gen.storeFraction = 0.25;
        b.gen.meanGap = 1.8;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.35),
                               zipf(12 * kMB, 1.15, 0.62),
                               chase(8 * kMB, 0.03)};
        b.gen.stores.streams = {zipf(6 * kMB, 1.15, 1.0)};
        b.gen.ifetches.streams = {zipf(512 * kKB, 0.7, 1.0)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "milc";
        b.suite = "cpu2006";
        b.description = "Lattice gauge theory, s.t., MIMD";
        b.paperMpki = 16.46;
        b.prismCompatible = false;
        b.gen.totalAccesses = 2'500'000;
        b.gen.loadFraction = 0.70;
        b.gen.storeFraction = 0.30;
        b.gen.meanGap = 2.0;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.35),
                               seq(24 * kMB, 16, 0.08),
                               zipf(1536 * kKB, 0.9, 0.55)};
        b.gen.stores.streams = {seq(24 * kMB, 16, 0.12),
                                zipf(512 * kKB, 0.85, 0.85)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "perlbench";
        b.suite = "cpu2006";
        b.description = "Perl interpreter, s.t.";
        b.paperMpki = 7.57;
        b.prismCompatible = false;
        b.gen.totalAccesses = 2'000'000;
        b.gen.loadFraction = 0.62;
        b.gen.storeFraction = 0.23;
        b.gen.meanGap = 2.5;
        b.gen.loads.streams = {zipf(64 * kKB, 0.95, 0.50),
                               zipf(768 * kKB, 0.95, 0.494),
                               chase(4 * kMB, 0.006)};
        b.gen.stores.streams = {zipf(512 * kKB, 0.95, 0.996),
                                chase(4 * kMB, 0.004)};
        b.gen.ifetches.streams = {zipf(512 * kKB, 0.85, 1.0)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "tonto";
        b.suite = "cpu2006";
        b.description = "Quantum package, s.t.";
        b.paperMpki = 12.39;
        b.paper = feats(10.97, 5.15, 10.25, 3.72, 0.30, 0.29, 5.59,
                        1.74, 1.10, 0.47);
        b.gen.totalAccesses = 2'000'000;
        b.gen.loadFraction = 0.70;
        b.gen.storeFraction = 0.30;
        b.gen.meanGap = 2.2;
        b.gen.loads.streams = {zipf(48 * kKB, 0.95, 0.45),
                               zipf(768 * kKB, 0.9, 0.52),
                               uniform(6 * kMB, 0.03)};
        b.gen.stores.streams = {zipf(384 * kKB, 0.9, 0.97),
                                uniform(6 * kMB, 0.03)};
        add(b);
    }

    // ----- PARSEC 3.0 -----------------------------------------------
    {
        BenchmarkSpec b;
        b.name = "x264";
        b.suite = "PARSEC3.0";
        b.description = "MPEG-4 encoding, s.t.";
        b.paperMpki = 17.81;
        b.paper = feats(16.14, 7.43, 11.84, 4.04, 11.40, 9.28, 1585.49,
                        3.56, 18.07, 2.84);
        b.gen.totalAccesses = 4'000'000;
        b.gen.loadFraction = 0.86;
        b.gen.storeFraction = 0.14;
        b.gen.meanGap = 1.5;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.35),
                               seq(16 * kMB, 16, 0.04),
                               zipf(2 * kMB, 1.0, 0.61)};
        b.gen.stores.streams = {zipf(8 * kMB, 1.3, 1.0)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "vips";
        b.suite = "PARSEC3.0";
        b.description = "Image transformation, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 5.43;
        b.paper = feats(15.17, 10.26, 17.79, 11.61, 12.02, 6.32,
                        1107.19, 1325.34, 1.91, 0.68);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.70;
        b.gen.storeFraction = 0.30;
        b.gen.meanGap = 2.5;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.45),
                               seq(8 * kMB, 8, 0.15, true),
                               zipf(1 * kMB, 0.9, 0.40, true)};
        b.gen.stores.streams = {seq(8 * kMB, 8, 0.10, true),
                                zipf(512 * kKB, 0.9, 0.90, true)};
        add(b);
    }

    // ----- NPB 3.3.1 (multi-threaded) -------------------------------
    {
        BenchmarkSpec b;
        b.name = "cg";
        b.suite = "NPB3.3.1";
        b.description = "Conjugate gradient, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 80.89;
        b.paper = feats(19.01, 11.71, 18.88, 11.96, 2.30, 2.36,
                        1015.43, 819.15, 0.73, 0.04);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.95;
        b.gen.storeFraction = 0.05;
        b.gen.meanGap = 1.2;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.30),
                               uniform(8 * kMB, 0.085, true),
                               seq(12 * kMB, 8, 0.06, true),
                               zipf(384 * kKB, 0.9, 0.41)};
        b.gen.stores.streams = {zipf(512 * kKB, 0.8, 1.0, true)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "ep";
        b.suite = "NPB3.3.1";
        b.description = "Embarrassingly parallel, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 9.31;
        b.paper = feats(8.00, 4.81, 8.05, 4.74, 0.563, 1.47, 0.84,
                        113.18, 1.25, 0.54);
        b.gen.totalAccesses = 2'000'000;
        b.gen.loadFraction = 0.70;
        b.gen.storeFraction = 0.30;
        b.gen.meanGap = 2.5;
        b.gen.loads.streams = {zipf(48 * kKB, 0.95, 0.50),
                               zipf(192 * kKB, 0.95, 0.488),
                               uniform(3 * kMB, 0.012)};
        b.gen.stores.streams = {zipf(256 * kKB, 0.95, 0.985),
                                uniform(3 * kMB, 0.015)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "ft";
        b.suite = "NPB3.3.1";
        b.description = "discrete 3D FFT, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 15.39;
        b.paper = feats(16.47, 9.93, 17.07, 10.28, 2.73, 2.72, 342.64,
                        611.66, 0.28, 0.27);
        b.gen.totalAccesses = 2'500'000;
        b.gen.loadFraction = 0.55;
        b.gen.storeFraction = 0.45;
        b.gen.meanGap = 2.0;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.40),
                               seq(16 * kMB, 8, 0.085, true),
                               uniform(16 * kMB, 0.02, true),
                               zipf(256 * kKB, 0.9, 0.38)};
        b.gen.stores.streams = {seq(16 * kMB, 8, 0.115, true),
                                uniform(16 * kMB, 0.02, true),
                                zipf(192 * kKB, 0.9, 0.73)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "is";
        b.suite = "NPB3.3.1";
        b.description = "Integer sort, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 35.63;
        b.paper = feats(15.23, 8.96, 15.65, 8.69, 2.20, 2.19, 1228.86,
                        794.26, 0.12, 0.06);
        b.gen.totalAccesses = 2'000'000;
        b.gen.loadFraction = 0.65;
        b.gen.storeFraction = 0.35;
        b.gen.meanGap = 1.8;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.35),
                               uniform(8 * kMB, 0.062, true),
                               zipf(512 * kKB, 0.85, 0.55, true)};
        b.gen.stores.streams = {uniform(8 * kMB, 0.075, true),
                                zipf(256 * kKB, 0.85, 0.925, true)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "lu";
        b.suite = "NPB3.3.1";
        b.description = "LU Gauss-Seidel solver, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 14.42;
        b.paper = feats(9.57, 6.01, 16.02, 9.63, 0.844, 0.84, 289.46,
                        259.75, 17.84, 3.99);
        b.gen.totalAccesses = 4'000'000;
        b.gen.loadFraction = 0.80;
        b.gen.storeFraction = 0.20;
        b.gen.meanGap = 1.5;
        b.gen.loads.streams = {zipf(64 * kKB, 0.95, 0.45),
                               zipf(1 * kMB, 1.0, 0.53, true),
                               seq(8 * kMB, 8, 0.014, true)};
        b.gen.stores.streams = {uniform(6 * kMB, 0.065, true),
                                zipf(512 * kKB, 0.9, 0.80, true),
                                seq(8 * kMB, 8, 0.135, true)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "mg";
        b.suite = "NPB3.3.1";
        b.description = "Multigrid on meshes, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 65.09;
        b.paper = feats(17.97, 11.80, 16.93, 10.18, 7.20, 7.29,
                        4249.78, 4767.97, 0.76, 0.16);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.82;
        b.gen.storeFraction = 0.18;
        b.gen.meanGap = 1.4;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.30),
                               seq(32 * kMB, 8, 0.06, true),
                               uniform(24 * kMB, 0.032, true),
                               zipf(512 * kKB, 0.85, 0.33)};
        b.gen.stores.streams = {seq(32 * kMB, 8, 0.075, true),
                                uniform(16 * kMB, 0.030, true),
                                zipf(384 * kKB, 0.85, 0.58)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "sp";
        b.suite = "NPB3.3.1";
        b.description = "Scalar penta-diagonal solver, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 44.35;
        b.paper = feats(18.69, 12.02, 18.21, 11.35, 1.14, 1.28, 556.75,
                        256.73, 9.23, 4.12);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.69;
        b.gen.storeFraction = 0.31;
        b.gen.meanGap = 1.6;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.33),
                               uniform(10 * kMB, 0.028, true),
                               seq(16 * kMB, 8, 0.022, true),
                               zipf(384 * kKB, 0.9, 0.49)};
        b.gen.stores.streams = {zipf(1 * kMB, 0.9, 0.945, true),
                                uniform(8 * kMB, 0.035, true)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "ua";
        b.suite = "NPB3.3.1";
        b.description = "Unstructured adaptive mesh, m.t.";
        b.multiThreaded = true;
        b.defaultThreads = 4;
        b.paperMpki = 39.08;
        b.paper = feats(13.95, 8.17, 11.23, 5.69, 1.32, 1.57, 362.45,
                        106.25, 9.97, 5.85);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.63;
        b.gen.storeFraction = 0.37;
        b.gen.meanGap = 1.7;
        b.gen.loads.streams = {zipf(64 * kKB, 0.9, 0.33),
                               chase(8 * kMB, 0.008, true),
                               uniform(6 * kMB, 0.008, true),
                               zipf(512 * kKB, 0.9, 0.626)};
        b.gen.stores.streams = {zipf(1 * kMB, 0.9, 0.969, true),
                                uniform(6 * kMB, 0.012, true)};
        add(b);
    }

    // ----- SPEC cpu2017 AI trio (single-threaded) -------------------
    {
        BenchmarkSpec b;
        b.name = "deepsjeng";
        b.suite = "cpu2017";
        b.description = "AI: alpha-beta tree search, s.t.";
        b.ai = true;
        b.paperMpki = 159.58;
        b.paper = feats(11.31, 5.69, 11.86, 5.93, 58.89, 68.28, 4.79,
                        4.33, 9.36, 4.43);
        b.gen.totalAccesses = 4'000'000;
        b.gen.loadFraction = 0.68;
        b.gen.storeFraction = 0.32;
        b.gen.meanGap = 0.7;
        b.gen.loads.streams = {zipf(64 * kKB, 0.95, 0.20),
                               zipf(32 * kMB, 1.22, 0.68),
                               chase(16 * kMB, 0.12)};
        b.gen.stores.streams = {zipf(24 * kMB, 1.22, 0.88),
                                chase(16 * kMB, 0.12)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "leela";
        b.suite = "cpu2017";
        b.description = "AI: Monte Carlo tree search, s.t.";
        b.ai = true;
        b.paperMpki = 24.05;
        b.paper = feats(10.13, 4.07, 8.95, 3.01, 2.26, 5.06, 1.59,
                        1.29, 6.01, 2.35);
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.72;
        b.gen.storeFraction = 0.28;
        b.gen.meanGap = 2.3;
        b.gen.loads.streams = {zipf(64 * kKB, 0.95, 0.40),
                               zipf(8 * kMB, 1.25, 0.568),
                               chase(6 * kMB, 0.032)};
        b.gen.stores.streams = {zipf(10 * kMB, 1.26, 1.0)};
        add(b);
    }
    {
        BenchmarkSpec b;
        b.name = "exchange2";
        b.suite = "cpu2017";
        b.description = "AI: recursive solution generator, s.t.";
        b.ai = true;
        b.paperMpki = 13.50;
        b.paper = feats(8.79, 3.52, 8.61, 3.47, 0.03, 0.02, 0.64, 0.58,
                        62.28, 42.89);
        // exchange2's access volume dwarfs the other AI workloads
        // (paper: ~10x leela); keep that ratio so the SVI totals
        // analysis sees the same contrast.
        b.gen.totalAccesses = 18'000'000;
        b.gen.loadFraction = 0.59;
        b.gen.storeFraction = 0.41;
        b.gen.meanGap = 2.0;
        b.gen.loads.streams = {zipf(48 * kKB, 0.9, 0.693),
                               zipf(224 * kKB, 0.9, 0.245),
                               chase(4 * kMB, 0.062)};
        b.gen.stores.streams = {zipf(32 * kKB, 1.3, 0.70),
                                zipf(160 * kKB, 1.3, 0.295),
                                uniform(1 * kMB, 0.005)};
        add(b);
    }

    return v;
}

/**
 * Workloads resolvable by name but outside the paper's Table V suite
 * (so the figure studies and suite-shape tests are unaffected).
 */
std::vector<BenchmarkSpec>
buildExtras()
{
    std::vector<BenchmarkSpec> v;
    {
        // SPEC cpu2006 lbm: the classic streaming-store stressor.
        // Not in the paper's Table V; provided as a write-pressure
        // probe for the endurance/write-stall metrics.
        BenchmarkSpec b;
        b.name = "lbm";
        b.suite = "cpu2006";
        b.description = "Lattice Boltzmann fluid dynamics, s.t.";
        b.paperMpki = 0.0; // not reported in Table V
        b.prismCompatible = false;
        b.gen.seed = 900;
        b.gen.totalAccesses = 3'000'000;
        b.gen.loadFraction = 0.53;
        b.gen.storeFraction = 0.47;
        b.gen.meanGap = 1.6;
        b.gen.loads.streams = {zipf(48 * kKB, 0.9, 0.20),
                               seq(40 * kMB, 8, 0.40),
                               zipf(1 * kMB, 0.85, 0.40)};
        b.gen.stores.streams = {seq(40 * kMB, 8, 0.55),
                                zipf(512 * kKB, 0.85, 0.45)};
        v.push_back(std::move(b));
    }
    return v;
}

} // namespace

const std::vector<BenchmarkSpec> &
benchmarkSuite()
{
    static const std::vector<BenchmarkSpec> suite = buildSuite();
    return suite;
}

const std::vector<BenchmarkSpec> &
extraBenchmarks()
{
    static const std::vector<BenchmarkSpec> extras = buildExtras();
    return extras;
}

const BenchmarkSpec &
benchmark(const std::string &name)
{
    // Deprecated wrapper (see suite.hh): resolve through the
    // WorkloadRegistry so parameterized spec strings work here too,
    // translating its diagnostics back into this function's
    // historical fatal() contract.
    try {
        return WorkloadRegistry::global().resolve(name);
    } catch (const std::exception &e) {
        fatal("unknown benchmark '", name, "': ", e.what());
    }
}

std::vector<const BenchmarkSpec *>
aiBenchmarks()
{
    std::vector<const BenchmarkSpec *> out;
    for (const BenchmarkSpec &b : benchmarkSuite())
        if (b.ai)
            out.push_back(&b);
    return out;
}

std::vector<const BenchmarkSpec *>
characterizedBenchmarks()
{
    std::vector<const BenchmarkSpec *> out;
    for (const BenchmarkSpec &b : benchmarkSuite())
        if (b.prismCompatible)
            out.push_back(&b);
    return out;
}

std::vector<std::unique_ptr<SyntheticTrace>>
buildTraces(const BenchmarkSpec &spec, std::uint32_t threads)
{
    if (threads == 0)
        threads = spec.defaultThreads;
    if (!spec.multiThreaded && threads > 1)
        fatal("benchmark '", spec.name, "' is single-threaded");
    return buildThreadTraces(spec.gen, threads);
}

} // namespace nvmcache
