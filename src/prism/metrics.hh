/**
 * @file
 * PRISM-style architecture-agnostic workload characterization
 * (paper §IV-B and Table VI).
 *
 * From a raw access stream we compute, separately for reads and
 * writes (splitting by kind is how the paper targets NVM read/write
 * asymmetry):
 *
 *  - global memory entropy: Shannon entropy (eq 9) of the accessed
 *    address distribution — temporal locality;
 *  - local memory entropy: same, after skipping the M=10 lowest
 *    address bits — spatial locality at page-ish granularity;
 *  - unique footprint: distinct addresses touched;
 *  - 90% footprint: number of hottest addresses covering 90% of all
 *    accesses — a working-set estimate;
 *  - total accesses.
 */

#ifndef NVMCACHE_PRISM_METRICS_HH
#define NVMCACHE_PRISM_METRICS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace nvmcache {

/** Metrics for one access kind (reads or writes). */
struct KindMetrics
{
    double globalEntropy = 0.0; ///< bits
    double localEntropy = 0.0;  ///< bits
    std::uint64_t unique = 0;
    std::uint64_t footprint90 = 0;
    std::uint64_t total = 0;
};

/** The full Table VI feature row for one workload. */
struct WorkloadFeatures
{
    KindMetrics reads;
    KindMetrics writes;

    /** The 10 features in Table VI column order. */
    std::vector<double> featureVector() const;

    /** Short names matching Table VI's header. */
    static const std::vector<std::string> &featureNames();
};

/**
 * Streaming collector: feed every access of every thread, then
 * finalize. Instruction fetches count as reads (they are memory
 * reads; PRISM traces them the same way).
 */
class FeatureCollector
{
  public:
    explicit FeatureCollector(std::uint32_t localMaskBits = 10);

    void record(const MemAccess &access);

    /** Compute the metrics from everything recorded so far. */
    WorkloadFeatures finalize() const;

    std::uint32_t localMaskBits() const { return maskBits_; }

  private:
    struct Histogram
    {
        std::unordered_map<std::uint64_t, std::uint64_t> full;
        std::unordered_map<std::uint64_t, std::uint64_t> masked;
        std::uint64_t total = 0;
    };

    static KindMetrics compute(const Histogram &h);

    std::uint32_t maskBits_;
    Histogram reads_;
    Histogram writes_;
};

/**
 * Convenience: characterize a set of per-thread traces (resetting
 * each first, iterating it to exhaustion, and resetting it again so
 * the caller can reuse it). @p skipPerThread (when non-empty, one
 * entry per thread) excludes that many leading accesses of each
 * thread from the features — the warm-up phase of server workloads,
 * which fills the cache but is not "the workload" being
 * characterized (see GeneratorConfig::warmupFraction /
 * warmupSplit()).
 */
WorkloadFeatures characterize(
    const std::vector<TraceSource *> &threads,
    std::uint32_t localMaskBits = 10,
    const std::vector<std::uint64_t> &skipPerThread = {});

class RecordedTrace;

/**
 * Characterize a recorded trace by replaying each thread's track in
 * thread order. Feature-identical to characterizing the live
 * generators the trace was recorded from (replay is bit-exact), but
 * pays only the decode cost. @p skipPerThread as above.
 */
WorkloadFeatures characterize(
    const RecordedTrace &trace, std::uint32_t localMaskBits = 10,
    const std::vector<std::uint64_t> &skipPerThread = {});

} // namespace nvmcache

#endif // NVMCACHE_PRISM_METRICS_HH
