#include "prism/metrics.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.hh"
#include "workload/recorded_trace.hh"

namespace nvmcache {

std::vector<double>
WorkloadFeatures::featureVector() const
{
    return {
        reads.globalEntropy,
        reads.localEntropy,
        writes.globalEntropy,
        writes.localEntropy,
        double(reads.unique),
        double(writes.unique),
        double(reads.footprint90),
        double(writes.footprint90),
        double(reads.total),
        double(writes.total),
    };
}

const std::vector<std::string> &
WorkloadFeatures::featureNames()
{
    static const std::vector<std::string> names = {
        "H_rg", "H_rl", "H_wg", "H_wl", "r_uniq",
        "w_uniq", "90%ft_r", "90%ft_w", "r_total", "w_total",
    };
    return names;
}

FeatureCollector::FeatureCollector(std::uint32_t localMaskBits)
    : maskBits_(localMaskBits)
{
    if (maskBits_ >= 64)
        fatal("FeatureCollector: mask bits out of range");
}

void
FeatureCollector::record(const MemAccess &access)
{
    Histogram &h =
        access.kind == AccessKind::Store ? writes_ : reads_;
    ++h.full[access.addr];
    ++h.masked[access.addr >> maskBits_];
    ++h.total;
}

KindMetrics
FeatureCollector::compute(const Histogram &h)
{
    KindMetrics m;
    m.total = h.total;
    m.unique = h.full.size();
    if (h.total == 0)
        return m;

    // Shannon entropy (eq 9) over the full and masked histograms.
    auto entropy = [&](const auto &map) {
        double bits = 0.0;
        const double n = double(h.total);
        for (const auto &[addr, count] : map) {
            (void)addr;
            const double p = double(count) / n;
            bits -= p * std::log2(p);
        }
        return bits;
    };
    m.globalEntropy = entropy(h.full);
    m.localEntropy = entropy(h.masked);

    // 90% footprint: hottest addresses covering 90% of accesses.
    std::vector<std::uint64_t> counts;
    counts.reserve(h.full.size());
    for (const auto &[addr, count] : h.full) {
        (void)addr;
        counts.push_back(count);
    }
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint64_t>());
    const std::uint64_t threshold = std::uint64_t(
        std::ceil(0.9 * double(h.total)));
    std::uint64_t covered = 0;
    for (std::uint64_t c : counts) {
        covered += c;
        ++m.footprint90;
        if (covered >= threshold)
            break;
    }
    return m;
}

WorkloadFeatures
FeatureCollector::finalize() const
{
    WorkloadFeatures f;
    f.reads = compute(reads_);
    f.writes = compute(writes_);
    return f;
}

namespace {

std::uint64_t
skipFor(const std::vector<std::uint64_t> &skipPerThread,
        std::size_t thread, std::size_t threads)
{
    if (skipPerThread.empty())
        return 0;
    if (skipPerThread.size() != threads)
        fatal("characterize: ", skipPerThread.size(),
              " warm-up counts for ", threads, " threads");
    return skipPerThread[thread];
}

} // namespace

WorkloadFeatures
characterize(const std::vector<TraceSource *> &threads,
             std::uint32_t localMaskBits,
             const std::vector<std::uint64_t> &skipPerThread)
{
    FeatureCollector collector(localMaskBits);
    for (std::size_t i = 0; i < threads.size(); ++i) {
        TraceSource *t = threads[i];
        std::uint64_t skip =
            skipFor(skipPerThread, i, threads.size());
        t->reset();
        MemAccess a;
        while (t->next(a)) {
            if (skip > 0) {
                --skip;
                continue;
            }
            collector.record(a);
        }
        t->reset();
    }
    return collector.finalize();
}

WorkloadFeatures
characterize(const RecordedTrace &trace, std::uint32_t localMaskBits,
             const std::vector<std::uint64_t> &skipPerThread)
{
    FeatureCollector collector(localMaskBits);
    std::array<MemAccess, 256> batch;
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
        TraceCursor cur = trace.cursor(t);
        std::uint64_t skip = skipFor(skipPerThread, t, trace.threads());
        std::size_t n;
        while ((n = cur.fill(batch)) != 0)
            for (std::size_t i = 0; i < n; ++i) {
                if (skip > 0) {
                    --skip;
                    continue;
                }
                collector.record(batch[i]);
            }
    }
    return collector.finalize();
}

} // namespace nvmcache
