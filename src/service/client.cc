#include "service/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "util/metrics.hh"
#include "util/rng.hh"

namespace nvmcache {

ServiceClient::ServiceClient(const std::string &socketPath,
                             ClientConfig cfg)
    : cfg_(cfg), socketPath_(socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " + socketPath);
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    int rc;
    do {
        rc = ::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("connect " + socketPath + ": " +
                                 std::strerror(err));
    }
    reader_ = std::make_unique<LineReader>(fd_);
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServiceClient::send(const std::string &line)
{
    if (!writeLine(fd_, line))
        throw std::runtime_error("service connection lost on write");
}

void
ServiceClient::send(const JsonValue &request)
{
    send(request.dump());
}

JsonValue
ServiceClient::receive()
{
    std::string line;
    if (!reader_->readLine(line, cfg_.timeoutMs)) {
        if (reader_->timedOut())
            throw std::runtime_error(
                "deadline of " + std::to_string(cfg_.timeoutMs) +
                " ms (--timeout-ms) expired waiting for a response "
                "from " +
                socketPath_);
        throw std::runtime_error(
            "service connection closed before response");
    }
    return JsonValue::parse(line);
}

JsonValue
ServiceClient::request(const JsonValue &req)
{
    send(req);
    return receive();
}

JsonValue
ServiceClient::run(const StudyRequest &study, const std::string &id)
{
    JsonValue req = study.toJson();
    req.set("op", JsonValue::makeString("run"));
    if (!id.empty())
        req.set("id", JsonValue::makeString(id));
    if (cfg_.deadlineMs > 0)
        req.set("deadlineMs", JsonValue::makeNumber(cfg_.deadlineMs));
    return request(req);
}

bool
ServiceClient::ping()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("ping"));
    return request(req).boolOr("ok", false);
}

JsonValue
ServiceClient::studies()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("studies"));
    return request(req);
}

JsonValue
ServiceClient::metrics()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("metrics"));
    return request(req);
}

JsonValue
ServiceClient::health()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("health"));
    return request(req);
}

JsonValue
ServiceClient::shutdown()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("shutdown"));
    return request(req);
}

JsonValue
runWithRetry(const std::string &socketPath, const StudyRequest &study,
             const ClientConfig &cfg, const std::string &id)
{
    const unsigned attempts = cfg.retries + 1;
    std::string history;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        double retryAfterMs = -1.0;
        std::string failure;
        try {
            // Fresh connection per attempt: the previous one may be
            // mid-frame after a timeout or a chaos-injected drop.
            ServiceClient client(socketPath, cfg);
            const JsonValue response = client.run(study, id);
            if (response.boolOr("ok", false) ||
                !response.boolOr("rejected", false))
                return response; // success, or a deterministic error
            // Admission-control rejection: retryable, maybe with a
            // server-supplied backoff hint.
            retryAfterMs = response.numberOr("retryAfterMs", -1.0);
            failure = "rejected (" +
                      response.stringOr("error", "no reason") + ")";
        } catch (const std::exception &e) {
            failure = e.what();
        }
        history += (history.empty() ? "" : "; ") + std::string("#") +
                   std::to_string(attempt + 1) + ": " + failure;
        if (attempt + 1 >= attempts)
            throw std::runtime_error(
                "run failed after " + std::to_string(attempts) +
                " attempt(s) (--retries " +
                std::to_string(cfg.retries) + "): " + history);
        // Jittered exponential backoff. The jitter draw comes from
        // deriveSeed(jitterSeed, attempt) — deterministic for a given
        // configuration, decorrelated across attempts, and with a
        // caller-varied seed decorrelated across client processes.
        double backoff = double(cfg.backoffBaseMs) *
                         double(std::uint64_t(1) << std::min(attempt,
                                                             20u));
        backoff = std::min(backoff, double(cfg.backoffMaxMs));
        backoff *= 0.5 + toUnitInterval(deriveSeed(cfg.jitterSeed,
                                                   attempt));
        backoff = std::max(backoff, retryAfterMs);
        MetricsRegistry::global().counter("client.retries").inc();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::int64_t(backoff)));
    }
    // Unreachable: the loop either returns or throws on its last pass.
    throw std::runtime_error("run failed: " + history);
}

} // namespace nvmcache
