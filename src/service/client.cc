#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nvmcache {

ServiceClient::ServiceClient(const std::string &socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " + socketPath);
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("connect " + socketPath + ": " +
                                 std::strerror(err));
    }
    reader_ = std::make_unique<LineReader>(fd_);
}

ServiceClient::~ServiceClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ServiceClient::send(const std::string &line)
{
    if (!writeLine(fd_, line))
        throw std::runtime_error("service connection lost on write");
}

void
ServiceClient::send(const JsonValue &request)
{
    send(request.dump());
}

JsonValue
ServiceClient::receive()
{
    std::string line;
    if (!reader_->readLine(line))
        throw std::runtime_error(
            "service connection closed before response");
    return JsonValue::parse(line);
}

JsonValue
ServiceClient::request(const JsonValue &req)
{
    send(req);
    return receive();
}

JsonValue
ServiceClient::run(const StudyRequest &study, const std::string &id)
{
    JsonValue req = study.toJson();
    req.set("op", JsonValue::makeString("run"));
    if (!id.empty())
        req.set("id", JsonValue::makeString(id));
    return request(req);
}

bool
ServiceClient::ping()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("ping"));
    return request(req).boolOr("ok", false);
}

JsonValue
ServiceClient::studies()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("studies"));
    return request(req);
}

JsonValue
ServiceClient::metrics()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("metrics"));
    return request(req);
}

JsonValue
ServiceClient::shutdown()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("shutdown"));
    return request(req);
}

} // namespace nvmcache
