/**
 * @file
 * Deterministic chaos injection for the evaluation service stack.
 *
 * PR 4 gave the *simulated* NVM LLC a seeded fault layer; this is the
 * same philosophy applied to the infrastructure that runs it. A
 * ChaosSpec (seed + per-fault-type counts) expands into a fixed
 * schedule of ChaosEvents via deriveSeed — the schedule is a pure
 * function of the spec, so the same seed always injects the same
 * faults in the same order, and a chaos run that exposed a bug can be
 * replayed exactly.
 *
 * Fault types:
 *   kill        SIGKILL a worker daemon (supervisor must respawn it)
 *   stop        SIGSTOP a worker (heartbeats stall; the supervisor
 *               must detect the hang, kill, and respawn)
 *   corrupt     flip a byte inside a persistent-store record (the
 *               checksum footer must catch it; the caller
 *               re-simulates and rewrites)
 *   truncate    cut a store record short (same recovery path)
 *   drop        shut down one live client connection on the front
 *               daemon mid-conversation (clients must time out or see
 *               EOF and retry)
 *   stall       delay the next N protocol writes (slow-I/O; nothing
 *               may deadlock, deadlines must still fire)
 *   partial     force the next N protocol writes through a 1-byte
 *               chunk path (exercises every partial-write retry loop)
 *
 * Because every recovery path re-derives results from deterministic
 * simulation or the content-addressed store, a study report produced
 * under any chaos schedule is byte-identical to a clean run — the
 * end-to-end tests assert exactly that.
 *
 * The injector executes events on a timer thread relative to start();
 * each executed event is logged ("chaos: #2 kill pick=1 -> hit"),
 * counted under "service.chaos.*", and appended to an in-memory log
 * retrievable for the daemon's health verb.
 */

#ifndef NVMCACHE_SERVICE_CHAOS_HH
#define NVMCACHE_SERVICE_CHAOS_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hh"

namespace nvmcache {

class ResultStore;

/** What to inject and how often. Parsed from "key=value,..." specs. */
struct ChaosSpec
{
    std::uint64_t seed = 1;
    unsigned kill = 0;     ///< worker SIGKILLs
    unsigned stop = 0;     ///< worker SIGSTOPs
    unsigned corrupt = 0;  ///< store record byte flips
    unsigned truncate = 0; ///< store record truncations
    unsigned drop = 0;     ///< client connection drops
    unsigned stall = 0;    ///< slow-write injections
    unsigned partial = 0;  ///< 1-byte-chunk write injections
    /** Mean spacing between events; per-event offsets jitter around
        multiples of this deterministically. */
    unsigned intervalMs = 1000;
    /** Quiet period before the first event. */
    unsigned startDelayMs = 0;
    /** Stall duration per injected slow write. */
    unsigned stallMs = 50;

    unsigned totalEvents() const
    {
        return kill + stop + corrupt + truncate + drop + stall +
               partial;
    }
};

/**
 * Parse "seed=7,kill=1,corrupt=2,interval-ms=500". Unknown keys and
 * malformed values throw std::runtime_error naming the token. An
 * empty spec string is valid (no events).
 */
ChaosSpec parseChaosSpec(const std::string &spec);

/** One scheduled fault. */
struct ChaosEvent
{
    unsigned index = 0;     ///< position in the schedule (log order)
    std::uint64_t atMs = 0; ///< offset from injector start
    std::string type;       ///< "kill", "corrupt", ... (spec keys)
    /** Deterministic target selector; executors reduce it modulo the
        live target count at execution time. */
    std::uint64_t pick = 0;
};

/**
 * Expand @p spec into its fault schedule, sorted by atMs (ties broken
 * by index). Pure function of the spec: same spec, same schedule.
 */
std::vector<ChaosEvent> buildChaosSchedule(const ChaosSpec &spec);

/** Deterministic JSON document of a spec's schedule (CLI output). */
JsonValue chaosScheduleToJson(const ChaosSpec &spec);

// --- protocol-write fault hooks -------------------------------------

/**
 * Armed write faults, consumed by writeLine (service/protocol.cc).
 * All counters are process-global and atomic; the disabled path is a
 * single relaxed load of an "armed" flag.
 */
void chaosArmStallWrites(unsigned writes, unsigned stallMs);
void chaosArmPartialWrites(unsigned writes);

/** True while any write fault is armed (cheap, relaxed). */
bool chaosWriteFaultsArmed();

/**
 * Consume one write's worth of armed faults. Returns the stall to
 * apply in ms (0 = none) and sets @p partial when this write must go
 * through the 1-byte chunk path.
 */
unsigned chaosConsumeWriteFault(bool &partial);

/** Disarm everything (test isolation). */
void chaosResetWriteFaults();

// --- store record damage --------------------------------------------

/**
 * Damage one record of @p store: pick the (pick mod n)-th entry of
 * the path-sorted scan and either flip a byte in its payload region
 * or truncate it to half size. Returns the damaged path, or "" when
 * the store holds no records ("no-target" — chaos against an empty
 * store is a no-op, not an error).
 */
std::string damageStoreRecord(ResultStore &store, std::uint64_t pick,
                              bool truncate);

// --- the injector ----------------------------------------------------

/**
 * Execution hooks the injector drives. Each returns true when a
 * target existed (logged "hit"), false on "no-target". Unset hooks
 * skip their fault types.
 */
struct ChaosTargets
{
    /** Send @p sig to worker (pick mod workers). */
    std::function<bool(std::uint64_t pick, int sig)> signalWorker;
    /** Damage a store record (flip or truncate). */
    std::function<bool(std::uint64_t pick, bool truncate)> damageRecord;
    /** Drop a live client connection. */
    std::function<bool(std::uint64_t pick)> dropConnection;
};

class ChaosInjector
{
  public:
    ChaosInjector(ChaosSpec spec, ChaosTargets targets);
    ~ChaosInjector();

    ChaosInjector(const ChaosInjector &) = delete;
    ChaosInjector &operator=(const ChaosInjector &) = delete;

    /** Start the timer thread; events fire relative to this call. */
    void start();

    /** Stop early (pending events are abandoned). Idempotent. */
    void stop();

    /** Executed-event log lines, in injection order. */
    std::vector<std::string> log() const;

    /** Events executed so far. */
    std::size_t injected() const;

    /** True once every scheduled event has been executed. */
    bool done() const;

  private:
    void run();
    bool execute(const ChaosEvent &ev);

    ChaosSpec spec_;
    ChaosTargets targets_;
    std::vector<ChaosEvent> schedule_;

    mutable std::mutex mu_;
    std::condition_variable cv_; ///< wakes the timer thread on stop
    std::vector<std::string> log_;
    std::size_t executed_ = 0;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_CHAOS_HH
