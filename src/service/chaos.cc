#include "service/chaos.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "store/result_store.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

/** Spec keys in schedule order; doubles as the event-type vocabulary. */
struct FaultKind
{
    const char *name;
    unsigned ChaosSpec::*count;
};

constexpr FaultKind kFaultKinds[] = {
    {"kill", &ChaosSpec::kill},
    {"stop", &ChaosSpec::stop},
    {"corrupt", &ChaosSpec::corrupt},
    {"truncate", &ChaosSpec::truncate},
    {"drop", &ChaosSpec::drop},
    {"stall", &ChaosSpec::stall},
    {"partial", &ChaosSpec::partial},
};

} // namespace

ChaosSpec
parseChaosSpec(const std::string &spec)
{
    ChaosSpec out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::runtime_error("chaos spec token '" + token +
                                     "' is not of the form key=value");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        bool known = false;
        for (const FaultKind &k : kFaultKinds)
            if (key == k.name) {
                out.*(k.count) =
                    ArgParser::parseU32("chaos " + key, value);
                known = true;
            }
        if (known)
            continue;
        if (key == "seed")
            out.seed = ArgParser::parseU32("chaos seed", value);
        else if (key == "interval-ms")
            out.intervalMs =
                ArgParser::parseU32("chaos interval-ms", value);
        else if (key == "start-delay-ms")
            out.startDelayMs =
                ArgParser::parseU32("chaos start-delay-ms", value);
        else if (key == "stall-ms")
            out.stallMs = ArgParser::parseU32("chaos stall-ms", value);
        else
            throw std::runtime_error(
                "unknown chaos spec key '" + key +
                "' (seed, kill, stop, corrupt, truncate, drop, stall, "
                "partial, interval-ms, start-delay-ms, stall-ms)");
    }
    return out;
}

std::vector<ChaosEvent>
buildChaosSchedule(const ChaosSpec &spec)
{
    // Every event draws its offset jitter and target selector from
    // deriveSeed(spec.seed, slot) — the schedule depends only on the
    // spec, never on wall clock or iteration order.
    std::vector<ChaosEvent> schedule;
    unsigned slot = 0;
    for (const FaultKind &kind : kFaultKinds) {
        for (unsigned i = 0; i < spec.*(kind.count); ++i, ++slot) {
            ChaosEvent ev;
            ev.type = kind.name;
            const std::uint64_t draw = deriveSeed(spec.seed, slot);
            // Spread events over [startDelay, startDelay +
            // totalEvents*interval) with +-50% deterministic jitter
            // around each slot's nominal position.
            const std::uint64_t nominal =
                std::uint64_t(slot) * spec.intervalMs;
            const std::uint64_t jitter =
                spec.intervalMs
                    ? (draw % spec.intervalMs)
                    : 0; // [0, interval)
            ev.atMs = spec.startDelayMs + nominal + jitter / 2;
            ev.pick = deriveSeed(spec.seed, 0x10000u + slot);
            schedule.push_back(std::move(ev));
        }
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const ChaosEvent &a, const ChaosEvent &b) {
                         return a.atMs < b.atMs;
                     });
    for (std::size_t i = 0; i < schedule.size(); ++i)
        schedule[i].index = unsigned(i);
    return schedule;
}

JsonValue
chaosScheduleToJson(const ChaosSpec &spec)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("seed", JsonValue::makeNumber(double(spec.seed)));
    doc.set("intervalMs",
            JsonValue::makeNumber(double(spec.intervalMs)));
    JsonValue events = JsonValue::makeArray();
    for (const ChaosEvent &ev : buildChaosSchedule(spec)) {
        JsonValue e = JsonValue::makeObject();
        e.set("index", JsonValue::makeNumber(double(ev.index)));
        e.set("atMs", JsonValue::makeNumber(double(ev.atMs)));
        e.set("type", JsonValue::makeString(ev.type));
        // The selector is reduced modulo the live target count at
        // execution time; exporting it modulo 1e6 keeps the JSON
        // number exact in a double.
        e.set("pick",
              JsonValue::makeNumber(double(ev.pick % 1000000)));
        events.push(std::move(e));
    }
    doc.set("events", std::move(events));
    return doc;
}

// --- protocol-write fault hooks -------------------------------------

namespace {

std::atomic<bool> g_writeFaultsArmed{false};
std::atomic<unsigned> g_stallWrites{0};
std::atomic<unsigned> g_stallMs{0};
std::atomic<unsigned> g_partialWrites{0};

void
refreshArmedFlag()
{
    g_writeFaultsArmed.store(g_stallWrites.load() > 0 ||
                                 g_partialWrites.load() > 0,
                             std::memory_order_relaxed);
}

} // namespace

void
chaosArmStallWrites(unsigned writes, unsigned stallMs)
{
    g_stallMs.store(stallMs);
    g_stallWrites.fetch_add(writes);
    refreshArmedFlag();
}

void
chaosArmPartialWrites(unsigned writes)
{
    g_partialWrites.fetch_add(writes);
    refreshArmedFlag();
}

bool
chaosWriteFaultsArmed()
{
    return g_writeFaultsArmed.load(std::memory_order_relaxed);
}

unsigned
chaosConsumeWriteFault(bool &partial)
{
    partial = false;
    unsigned stall = 0;
    // Decrement-if-positive: concurrent writers race benignly — each
    // armed fault is consumed by exactly one write.
    unsigned n = g_stallWrites.load();
    while (n > 0 &&
           !g_stallWrites.compare_exchange_weak(n, n - 1)) {
    }
    if (n > 0)
        stall = g_stallMs.load();
    n = g_partialWrites.load();
    while (n > 0 &&
           !g_partialWrites.compare_exchange_weak(n, n - 1)) {
    }
    partial = n > 0;
    refreshArmedFlag();
    return stall;
}

void
chaosResetWriteFaults()
{
    g_stallWrites.store(0);
    g_partialWrites.store(0);
    g_stallMs.store(0);
    refreshArmedFlag();
}

// --- store record damage --------------------------------------------

std::string
damageStoreRecord(ResultStore &store, std::uint64_t pick,
                  bool truncate)
{
    std::vector<StoreScanEntry> entries = store.scan();
    if (entries.empty())
        return "";
    // scan() walks the directory unordered; sort so the pick is a
    // function of store *contents*, not readdir order.
    std::sort(entries.begin(), entries.end(),
              [](const StoreScanEntry &a, const StoreScanEntry &b) {
                  return a.path < b.path;
              });
    const StoreScanEntry &victim = entries[pick % entries.size()];
    namespace fs = std::filesystem;
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(victim.path, ec);
    if (ec || size == 0)
        return "";
    if (truncate) {
        fs::resize_file(victim.path, size / 2, ec);
        return ec ? "" : victim.path;
    }
    // Flip one byte mid-file (payload region for any non-trivial
    // record): the checksum footer must reject the whole record.
    std::FILE *f = std::fopen(victim.path.c_str(), "r+b");
    if (!f)
        return "";
    std::fseek(f, long(size / 2), SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, long(size / 2), SEEK_SET);
    std::fputc((c == EOF ? 0 : c) ^ 0xff, f);
    std::fclose(f);
    return victim.path;
}

// --- the injector ----------------------------------------------------

ChaosInjector::ChaosInjector(ChaosSpec spec, ChaosTargets targets)
    : spec_(spec), targets_(std::move(targets)),
      schedule_(buildChaosSchedule(spec_))
{
}

ChaosInjector::~ChaosInjector()
{
    stop();
}

void
ChaosInjector::start()
{
    if (schedule_.empty() || thread_.joinable())
        return;
    thread_ = std::thread([this] { run(); });
}

void
ChaosInjector::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

std::vector<std::string>
ChaosInjector::log() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return log_;
}

std::size_t
ChaosInjector::injected() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return executed_;
}

bool
ChaosInjector::done() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return executed_ == schedule_.size();
}

void
ChaosInjector::run()
{
    const auto t0 = std::chrono::steady_clock::now();
    for (const ChaosEvent &ev : schedule_) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait_until(lk,
                           t0 + std::chrono::milliseconds(ev.atMs),
                           [this] { return stopping_; });
            if (stopping_)
                return;
        }
        const bool hit = execute(ev);
        MetricsRegistry &metrics = MetricsRegistry::global();
        metrics.counter("service.chaos.injected").inc();
        metrics.counter("service.chaos." + ev.type).inc();
        if (!hit)
            metrics.counter("service.chaos.noTarget").inc();
        traceInstant("service.chaos", "service",
                     "chaos/" + std::to_string(ev.index) + "/" +
                         ev.type);
        std::string line = "chaos: #" + std::to_string(ev.index) +
                           " " + ev.type + " pick=" +
                           std::to_string(ev.pick % 1000000) +
                           (hit ? " -> hit" : " -> no-target");
        inform(line);
        std::lock_guard<std::mutex> lk(mu_);
        log_.push_back(std::move(line));
        executed_ += 1;
    }
}

bool
ChaosInjector::execute(const ChaosEvent &ev)
{
    if (ev.type == "kill")
        return targets_.signalWorker &&
               targets_.signalWorker(ev.pick, SIGKILL);
    if (ev.type == "stop")
        return targets_.signalWorker &&
               targets_.signalWorker(ev.pick, SIGSTOP);
    if (ev.type == "corrupt")
        return targets_.damageRecord &&
               targets_.damageRecord(ev.pick, /*truncate=*/false);
    if (ev.type == "truncate")
        return targets_.damageRecord &&
               targets_.damageRecord(ev.pick, /*truncate=*/true);
    if (ev.type == "drop")
        return targets_.dropConnection &&
               targets_.dropConnection(ev.pick);
    if (ev.type == "stall") {
        chaosArmStallWrites(4, spec_.stallMs);
        return true;
    }
    if (ev.type == "partial") {
        chaosArmPartialWrites(4);
        return true;
    }
    return false;
}

} // namespace nvmcache
