#include "service/workers.hh"

#include <chrono>
#include <thread>
#include <utility>

#include "service/client.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

std::string
laneMetric(std::size_t index, const char *leaf)
{
    return "service.worker.w" + std::to_string(index) + "." + leaf;
}

} // namespace

WorkerFleet::WorkerFleet(WorkerFleetConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.queueCap == 0)
        cfg_.queueCap = 1;
    lanes_.reserve(cfg_.sockets.size());
    for (std::size_t i = 0; i < cfg_.sockets.size(); ++i) {
        auto lane = std::make_unique<Lane>();
        lane->index = i;
        lane->socket = cfg_.sockets[i];
        lanes_.push_back(std::move(lane));
    }
    for (auto &lane : lanes_) {
        Lane *l = lane.get();
        l->dispatcher = std::thread([this, l] { dispatchLoop(*l); });
    }
}

WorkerFleet::~WorkerFleet()
{
    for (auto &lane : lanes_) {
        {
            std::lock_guard<std::mutex> lk(lane->mu);
            stopping_ = true;
        }
        lane->cv.notify_all();
    }
    for (auto &lane : lanes_)
        if (lane->dispatcher.joinable())
            lane->dispatcher.join();
}

std::size_t
WorkerFleet::primeAll(const std::vector<StudyRequest> &requests)
{
    // One batch at a time: pending_/failures_ describe a single
    // primeAll invocation, and interleaved batches would also fight
    // over the bounded queues.
    std::lock_guard<std::mutex> batch(batchMu_);
    if (lanes_.empty() || requests.empty())
        return 0;

    // Identical sub-requests would coalesce server-side anyway; dedup
    // here keeps the dispatch counters meaningful.
    std::vector<const StudyRequest *> unique;
    {
        std::vector<std::string> seen;
        for (const StudyRequest &req : requests) {
            const std::string key = req.canonicalKey();
            bool dup = false;
            for (const std::string &k : seen)
                dup = dup || k == key;
            if (dup)
                continue;
            seen.push_back(key);
            unique.push_back(&req);
        }
    }

    {
        std::lock_guard<std::mutex> lk(doneMu_);
        pending_ = unique.size();
        failures_ = 0;
    }

    PhaseTimer timer("service.worker.primeSeconds");
    TraceSpan span("service.worker.prime", "service",
                   TraceContext::current().path + "/prime");
    // Contiguous block assignment: shard grids enumerate the sweep
    // workload-major, so a contiguous range keeps every sub-request
    // that shares a recorded trace on one worker — the trace is built
    // and stored once instead of once per worker (round-robin made
    // each worker rebuild every workload's trace). Pushes interleave
    // column-wise across lanes so the bounded queues fill in parallel
    // instead of stalling on the first lane's cap.
    const std::size_t laneCount = lanes_.size();
    std::vector<std::vector<const StudyRequest *>> blocks(laneCount);
    for (std::size_t i = 0; i < unique.size(); ++i)
        blocks[i * laneCount / unique.size()].push_back(unique[i]);
    for (std::size_t off = 0;; ++off) {
        bool any = false;
        for (std::size_t l = 0; l < laneCount; ++l) {
            if (off >= blocks[l].size())
                continue;
            any = true;
            Job job;
            job.request = *blocks[l][off];
            push(*lanes_[l], std::move(job), /*bounded=*/true);
        }
        if (!any)
            break;
    }

    std::size_t failed;
    {
        std::unique_lock<std::mutex> lk(doneMu_);
        doneCv_.wait(lk, [this] { return pending_ == 0; });
        failed = failures_;
    }
    if (failed > 0)
        warn("worker fleet: ", failed,
             " sub-request(s) failed on every worker; the study "
             "simulates them locally");
    return failed;
}

void
WorkerFleet::push(Lane &lane, Job job, bool bounded)
{
    {
        std::unique_lock<std::mutex> lk(lane.mu);
        if (bounded)
            // Backpressure: the producer waits for a slot instead of
            // buffering the whole grid. Resubmissions bypass the bound
            // — a dispatcher blocking on a full sibling queue while
            // that sibling blocks on ours would deadlock the fleet.
            lane.cv.wait(lk, [this, &lane] {
                return stopping_ || lane.queue.size() < cfg_.queueCap;
            });
        if (stopping_) {
            lk.unlock();
            jobDone(/*failed=*/true);
            return;
        }
        lane.queue.push_back(std::move(job));
    }
    lane.cv.notify_all();
}

void
WorkerFleet::dispatchLoop(Lane &lane)
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(lane.mu);
            lane.cv.wait(lk, [this, &lane] {
                return stopping_ || !lane.queue.empty();
            });
            if (lane.queue.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(lane.queue.front());
            lane.queue.pop_front();
        }
        lane.cv.notify_all(); // a producer may be waiting on the bound

        MetricsRegistry &metrics = MetricsRegistry::global();
        metrics.counter(laneMetric(lane.index, "dispatched")).inc();
        metrics.counter("service.worker.dispatched").inc();
        if (runOn(lane, job)) {
            metrics.counter(laneMetric(lane.index, "completed")).inc();
            metrics.counter("service.worker.completed").inc();
            jobDone(/*failed=*/false);
            continue;
        }
        // This worker declined (unreachable or rejecting): fail the
        // job over to the next sibling until every worker has had it.
        metrics.counter(laneMetric(lane.index, "failed")).inc();
        metrics.counter("service.worker.failed").inc();
        job.attempts += 1;
        if (job.attempts >= lanes_.size()) {
            jobDone(/*failed=*/true);
            continue;
        }
        metrics.counter("service.worker.resubmitted").inc();
        push(*lanes_[(lane.index + 1) % lanes_.size()], std::move(job),
             /*bounded=*/false);
    }
}

bool
WorkerFleet::runOn(Lane &lane, const Job &job)
{
    const std::string key = job.request.canonicalKey();
    TraceSpan span("service.worker.run", "service",
                   "worker/w" + std::to_string(lane.index) + "/" +
                       traceHashId(key));
    try {
        if (!lane.client) {
            // The worker may still be binding its socket; dial with
            // patience on first contact.
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    lane.client = std::make_unique<ServiceClient>(
                        lane.socket);
                    break;
                } catch (const std::exception &) {
                    if (attempt + 1 >= cfg_.connectRetries)
                        throw;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                }
            }
        }
        const JsonValue response = lane.client->run(job.request);
        if (response.boolOr("ok", false))
            return true;
        // A rejection (queue full, draining) is retryable elsewhere; a
        // study-level error is deterministic and would fail on every
        // sibling too, but resubmitting is still harmless — the local
        // run reports the authoritative error either way.
        return false;
    } catch (const std::exception &) {
        // Connection-level failure: drop the client so the next job
        // (or this one, on a sibling) redials.
        lane.client.reset();
        return false;
    }
}

void
WorkerFleet::jobDone(bool failed)
{
    {
        std::lock_guard<std::mutex> lk(doneMu_);
        if (failed)
            failures_ += 1;
        if (pending_ > 0)
            pending_ -= 1;
    }
    doneCv_.notify_all();
}

} // namespace nvmcache
