#include "service/workers.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "service/client.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

std::string
laneMetric(std::size_t index, const char *leaf)
{
    return "service.worker.w" + std::to_string(index) + "." + leaf;
}

} // namespace

WorkerFleet::WorkerFleet(WorkerFleetConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.queueCap == 0)
        cfg_.queueCap = 1;
    lanes_.reserve(cfg_.sockets.size());
    for (std::size_t i = 0; i < cfg_.sockets.size(); ++i) {
        auto lane = std::make_unique<Lane>();
        lane->index = i;
        lane->socket = cfg_.sockets[i];
        lanes_.push_back(std::move(lane));
    }
    for (auto &lane : lanes_) {
        Lane *l = lane.get();
        l->dispatcher = std::thread([this, l] { dispatchLoop(*l); });
    }
}

WorkerFleet::~WorkerFleet()
{
    for (auto &lane : lanes_) {
        {
            std::lock_guard<std::mutex> lk(lane->mu);
            stopping_ = true;
        }
        lane->cv.notify_all();
    }
    for (auto &lane : lanes_)
        if (lane->dispatcher.joinable())
            lane->dispatcher.join();
}

void
WorkerFleet::setWorkerHealthy(std::size_t index, bool healthy)
{
    if (index >= lanes_.size())
        return;
    Lane &lane = *lanes_[index];
    const bool was =
        lane.healthy.exchange(healthy, std::memory_order_relaxed);
    if (was == healthy)
        return;
    // A lane that just went unhealthy may hold queued jobs; wake its
    // dispatcher so they fail over to the siblings now instead of on
    // the next push.
    lane.cv.notify_all();
    MetricsRegistry::global()
        .gauge(laneMetric(index, "healthy"))
        .set(healthy ? 1 : 0);
}

std::size_t
WorkerFleet::healthyCount() const
{
    std::size_t n = 0;
    for (const auto &lane : lanes_)
        n += lane->healthy.load(std::memory_order_relaxed) ? 1 : 0;
    return n;
}

std::size_t
WorkerFleet::primeAll(const std::vector<StudyRequest> &requests)
{
    // One batch at a time: pending_/failures_ describe a single
    // primeAll invocation, and interleaved batches would also fight
    // over the bounded queues.
    std::lock_guard<std::mutex> batch(batchMu_);
    if (lanes_.empty() || requests.empty())
        return 0;

    // Identical sub-requests would coalesce server-side anyway; dedup
    // here keeps the dispatch counters meaningful.
    std::vector<const StudyRequest *> unique;
    {
        std::vector<std::string> seen;
        for (const StudyRequest &req : requests) {
            const std::string key = req.canonicalKey();
            bool dup = false;
            for (const std::string &k : seen)
                dup = dup || k == key;
            if (dup)
                continue;
            seen.push_back(key);
            unique.push_back(&req);
        }
    }

    {
        std::lock_guard<std::mutex> lk(doneMu_);
        pending_ = unique.size();
        failures_ = 0;
    }

    PhaseTimer timer("service.worker.primeSeconds");
    TraceSpan span("service.worker.prime", "service",
                   TraceContext::current().path + "/prime");
    // Contiguous block assignment: shard grids enumerate the sweep
    // workload-major, so a contiguous range keeps every sub-request
    // that shares a recorded trace on one worker — the trace is built
    // and stored once instead of once per worker (round-robin made
    // each worker rebuild every workload's trace). Pushes interleave
    // column-wise across lanes so the bounded queues fill in parallel
    // instead of stalling on the first lane's cap. Blocks go only to
    // healthy lanes; when the supervisor has every lane down we fall
    // back to all of them and let failover sort out the survivors.
    std::vector<Lane *> targets;
    for (auto &lane : lanes_)
        if (lane->healthy.load(std::memory_order_relaxed))
            targets.push_back(lane.get());
    if (targets.empty())
        for (auto &lane : lanes_)
            targets.push_back(lane.get());
    const std::size_t laneCount = targets.size();
    std::vector<std::vector<const StudyRequest *>> blocks(laneCount);
    for (std::size_t i = 0; i < unique.size(); ++i)
        blocks[i * laneCount / unique.size()].push_back(unique[i]);
    for (std::size_t off = 0;; ++off) {
        bool any = false;
        for (std::size_t l = 0; l < laneCount; ++l) {
            if (off >= blocks[l].size())
                continue;
            any = true;
            Job job;
            job.request = *blocks[l][off];
            push(*targets[l], std::move(job), /*bounded=*/true);
        }
        if (!any)
            break;
    }

    std::size_t failed;
    {
        std::unique_lock<std::mutex> lk(doneMu_);
        doneCv_.wait(lk, [this] { return pending_ == 0; });
        failed = failures_;
    }
    if (failed > 0)
        warn("worker fleet: ", failed,
             " sub-request(s) failed on every worker; the study "
             "simulates them locally");
    return failed;
}

void
WorkerFleet::push(Lane &lane, Job job, bool bounded)
{
    {
        std::unique_lock<std::mutex> lk(lane.mu);
        if (bounded)
            // Backpressure: the producer waits for a slot instead of
            // buffering the whole grid. Resubmissions bypass the bound
            // — a dispatcher blocking on a full sibling queue while
            // that sibling blocks on ours would deadlock the fleet.
            // An unhealthy lane also stops blocking producers: its
            // dispatcher is busy declining, so slots free up anyway.
            lane.cv.wait(lk, [this, &lane] {
                return stopping_ ||
                       lane.queue.size() < cfg_.queueCap ||
                       !lane.healthy.load(std::memory_order_relaxed);
            });
        if (stopping_) {
            lk.unlock();
            jobDone(/*failed=*/true);
            return;
        }
        lane.queue.push_back(std::move(job));
    }
    lane.cv.notify_all();
}

void
WorkerFleet::dispatchLoop(Lane &lane)
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(lane.mu);
            lane.cv.wait(lk, [this, &lane] {
                return stopping_ || !lane.queue.empty();
            });
            if (lane.queue.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            job = std::move(lane.queue.front());
            lane.queue.pop_front();
        }
        lane.cv.notify_all(); // a producer may be waiting on the bound

        MetricsRegistry &metrics = MetricsRegistry::global();
        // A quarantined/dead lane declines without dialing: its queue
        // share drains to the siblings at memory speed instead of
        // burning a connect-retry cycle per job.
        if (!lane.healthy.load(std::memory_order_relaxed)) {
            metrics.counter(laneMetric(lane.index, "declined")).inc();
            metrics.counter("service.worker.declined").inc();
            job.attempts += 1;
            if (job.attempts >= lanes_.size()) {
                jobDone(/*failed=*/true);
                continue;
            }
            metrics.counter("service.worker.resubmitted").inc();
            push(*lanes_[(lane.index + 1) % lanes_.size()],
                 std::move(job), /*bounded=*/false);
            continue;
        }
        metrics.counter(laneMetric(lane.index, "dispatched")).inc();
        metrics.counter("service.worker.dispatched").inc();
        if (runOn(lane, job)) {
            metrics.counter(laneMetric(lane.index, "completed")).inc();
            metrics.counter("service.worker.completed").inc();
            jobDone(/*failed=*/false);
            continue;
        }
        // This worker declined (unreachable, past its deadline, or
        // rejecting): fail the job over to the next sibling until
        // every worker has had it.
        metrics.counter(laneMetric(lane.index, "failed")).inc();
        metrics.counter("service.worker.failed").inc();
        job.attempts += 1;
        if (job.attempts >= lanes_.size()) {
            jobDone(/*failed=*/true);
            continue;
        }
        metrics.counter("service.worker.resubmitted").inc();
        push(*lanes_[(lane.index + 1) % lanes_.size()], std::move(job),
             /*bounded=*/false);
    }
}

bool
WorkerFleet::runOn(Lane &lane, const Job &job)
{
    const std::string key = job.request.canonicalKey();
    TraceSpan span("service.worker.run", "service",
                   "worker/w" + std::to_string(lane.index) + "/" +
                       traceHashId(key));
    try {
        if (!lane.client) {
            // The worker may still be binding its socket; dial with
            // patience on first contact.
            ClientConfig ccfg;
            ccfg.timeoutMs = cfg_.jobTimeoutMs;
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    lane.client = std::make_unique<ServiceClient>(
                        lane.socket, ccfg);
                    break;
                } catch (const std::exception &) {
                    if (attempt + 1 >= cfg_.connectRetries)
                        throw;
                    if (!lane.healthy.load(std::memory_order_relaxed))
                        throw; // supervisor says down — stop dialing
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                }
            }
        }
        const JsonValue response = lane.client->run(job.request);
        if (response.boolOr("ok", false))
            return true;
        // A rejection (queue full, draining) is retryable elsewhere; a
        // study-level error is deterministic and would fail on every
        // sibling too, but resubmitting is still harmless — the local
        // run reports the authoritative error either way.
        return false;
    } catch (const std::exception &) {
        // Connection-level failure or deadline miss: drop the client
        // so the next job (or this one, on a sibling) redials. After
        // a timeout the connection is mid-frame anyway — the late
        // response would desynchronize every reply after it.
        lane.client.reset();
        return false;
    }
}

void
WorkerFleet::jobDone(bool failed)
{
    {
        std::lock_guard<std::mutex> lk(doneMu_);
        if (failed)
            failures_ += 1;
        if (pending_ > 0)
            pending_ -= 1;
    }
    doneCv_.notify_all();
}

// --- process supervision ----------------------------------------------

WorkerSupervisor::WorkerSupervisor(WorkerSupervisorConfig cfg)
    : cfg_(std::move(cfg))
{
    if (!cfg_.command)
        throw std::runtime_error(
            "WorkerSupervisor needs a spawn command");
    if (cfg_.heartbeatMs == 0)
        cfg_.heartbeatMs = 1;
    if (cfg_.missedLimit == 0)
        cfg_.missedLimit = 1;
    slots_.resize(cfg_.sockets.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        slots_[i].index = i;
        slots_[i].socket = cfg_.sockets[i];
    }
}

WorkerSupervisor::~WorkerSupervisor()
{
    stop();
}

void
WorkerSupervisor::start()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (started_)
        return;
    started_ = true;
    const auto now = std::chrono::steady_clock::now();
    for (Slot &slot : slots_) {
        spawn(slot);
        slot.spawnedAt = now;
    }
    thread_ = std::thread([this] { superviseLoop(); });
}

void
WorkerSupervisor::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!started_ || stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();

    // Graceful worker shutdown: TERM, a bounded grace period of
    // WNOHANG reaps, then KILL the stragglers.
    std::lock_guard<std::mutex> lk(mu_);
    for (Slot &slot : slots_)
        if (slot.alive && slot.pid > 0)
            ::kill(slot.pid, SIGTERM);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    for (Slot &slot : slots_) {
        if (!slot.alive || slot.pid <= 0)
            continue;
        int status = 0;
        for (;;) {
            const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
            if (r == slot.pid || (r < 0 && errno != EINTR))
                break;
            if (std::chrono::steady_clock::now() >= deadline) {
                ::kill(slot.pid, SIGKILL);
                while (::waitpid(slot.pid, &status, 0) < 0 &&
                       errno == EINTR) {
                }
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        slot.alive = false;
        slot.pid = -1;
    }
}

void
WorkerSupervisor::setHealthSink(
    std::function<void(std::size_t, bool)> sink)
{
    std::lock_guard<std::mutex> lk(mu_);
    healthSink_ = std::move(sink);
}

std::size_t
WorkerSupervisor::aliveWorkers() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.alive ? 1 : 0;
    return n;
}

std::size_t
WorkerSupervisor::quarantinedWorkers() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.quarantined ? 1 : 0;
    return n;
}

std::size_t
WorkerSupervisor::restarts() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return restarts_;
}

bool
WorkerSupervisor::atFullCapacity() const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const Slot &slot : slots_)
        if (!slot.alive || slot.quarantined)
            return false;
    return !slots_.empty() || cfg_.sockets.empty();
}

bool
WorkerSupervisor::signalWorker(std::uint64_t pick, int sig)
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<Slot *> alive;
    for (Slot &slot : slots_)
        if (slot.alive && slot.pid > 0)
            alive.push_back(&slot);
    if (alive.empty())
        return false;
    Slot &victim = *alive[pick % alive.size()];
    return ::kill(victim.pid, sig) == 0;
}

void
WorkerSupervisor::superviseLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait_for(lk,
                         std::chrono::milliseconds(cfg_.heartbeatMs),
                         [this] { return stopping_; });
            if (stopping_)
                return;
        }
        superviseOnce();
    }
}

void
WorkerSupervisor::superviseOnce()
{
    // Phase 1 (locked): reap exited children.
    std::vector<std::pair<std::size_t, std::string>> toProbe;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (Slot &slot : slots_) {
            if (!slot.alive || slot.quarantined)
                continue;
            int status = 0;
            const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
            if (r == slot.pid)
                onDeath(slot, "exited");
            else
                toProbe.emplace_back(slot.index, slot.socket);
        }
    }

    // Phase 2 (unlocked): heartbeat-probe the survivors. Each probe
    // may block up to heartbeatMs, so the lock stays free for health
    // queries and chaos signals while we wait.
    std::vector<std::pair<std::size_t, bool>> probed;
    probed.reserve(toProbe.size());
    for (const auto &[index, socket] : toProbe)
        probed.emplace_back(index, pingWorker(socket));

    // Phase 3 (locked): apply probe results, kill hung workers,
    // respawn the dead, trip the circuit breaker.
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &[index, ok] : probed) {
        Slot &slot = slots_[index];
        if (!slot.alive)
            continue; // reaped between phases by signalWorker death
        if (ok) {
            slot.missedHeartbeats = 0;
            continue;
        }
        slot.missedHeartbeats += 1;
        if (slot.missedHeartbeats < cfg_.missedLimit)
            continue;
        // Unresponsive (SIGSTOPped, wedged, or mid-crash): a stopped
        // process still accepts connects via the kernel backlog, so
        // the timed-out ping is the only reliable hang signal. KILL
        // cannot be caught or ignored — the reap below is prompt.
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
        }
        onDeath(slot, "unresponsive");
    }
    for (Slot &slot : slots_) {
        if (slot.alive || slot.quarantined || stopping_)
            continue;
        if (now < slot.respawnNotBefore)
            continue;
        // Circuit breaker: too many restarts inside the rolling
        // window means the worker dies faster than it serves —
        // quarantine it and let the fleet redistribute its share
        // instead of burning CPU on a crash loop.
        const auto windowStart =
            now - std::chrono::milliseconds(cfg_.quarantineWindowMs);
        while (!slot.restartTimes.empty() &&
               slot.restartTimes.front() < windowStart)
            slot.restartTimes.pop_front();
        if (cfg_.quarantineRestarts > 0 &&
            slot.restartTimes.size() >= cfg_.quarantineRestarts) {
            slot.quarantined = true;
            warn("worker w", slot.index, ": quarantined after ",
                 slot.restartTimes.size(), " restarts in ",
                 cfg_.quarantineWindowMs, " ms");
            MetricsRegistry::global()
                .gauge("service.worker.quarantined")
                .set(double(
                    std::count_if(slots_.begin(), slots_.end(),
                                  [](const Slot &s) {
                                      return s.quarantined;
                                  })));
            traceInstant("service.worker.quarantine", "service",
                         "worker/w" + std::to_string(slot.index));
            notifyHealth(slot.index, false);
            continue;
        }
        spawn(slot);
        if (slot.alive) {
            slot.restartTimes.push_back(now);
            restarts_ += 1;
            MetricsRegistry::global()
                .counter("service.worker.restarts")
                .inc();
            inform("worker w", slot.index, ": respawned (pid ",
                   slot.pid, ", restart #", restarts_, ")");
            // Healthy immediately: the fleet dials lazily with
            // patience, so marking up before the socket binds only
            // re-enables assignment, it cannot lose a job.
            notifyHealth(slot.index, true);
        }
    }
}

void
WorkerSupervisor::spawn(Slot &slot)
{
    const std::vector<std::string> argv = cfg_.command(slot.index);
    if (argv.empty()) {
        slot.alive = false;
        return;
    }
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    // fork + exec, never bare fork: the front daemon is multithreaded
    // by the time a respawn happens, and only exec resets the child to
    // a sane single-threaded world (a bare fork would inherit mutexes
    // whose owner threads do not exist in the child).
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        _exit(127); // exec failed; the supervisor reaps and retries
    }
    if (pid < 0) {
        warn("worker w", slot.index, ": fork failed: ",
             std::strerror(errno));
        slot.alive = false;
        return;
    }
    slot.pid = pid;
    slot.alive = true;
    slot.missedHeartbeats = 0;
    slot.spawnedAt = std::chrono::steady_clock::now();
    TraceSpan span("service.worker.spawn", "service",
                   "worker/w" + std::to_string(slot.index) + "/spawn");
}

void
WorkerSupervisor::onDeath(Slot &slot, const char *cause)
{
    const auto now = std::chrono::steady_clock::now();
    const bool quickCrash =
        now - slot.spawnedAt <
        std::chrono::milliseconds(cfg_.quarantineWindowMs);
    slot.consecutiveCrashes =
        quickCrash ? slot.consecutiveCrashes + 1 : 1;
    // First (or isolated) death respawns on the next pass — full
    // capacity back within one supervision interval. Streaks back off
    // exponentially so a crash loop cannot monopolize the machine
    // before the circuit breaker trips.
    unsigned delayMs = 0;
    if (slot.consecutiveCrashes >= 2) {
        const unsigned shift =
            std::min(slot.consecutiveCrashes - 2, 16u);
        delayMs = std::min(cfg_.backoffBaseMs << shift,
                           cfg_.backoffMaxMs);
    }
    slot.respawnNotBefore = now + std::chrono::milliseconds(delayMs);
    slot.alive = false;
    slot.pid = -1;
    slot.missedHeartbeats = 0;
    warn("worker w", slot.index, ": ", cause,
         delayMs ? "; respawn backoff " + std::to_string(delayMs) +
                       " ms"
                 : "; respawning");
    MetricsRegistry::global().counter("service.worker.deaths").inc();
    traceInstant("service.worker.death", "service",
                 "worker/w" + std::to_string(slot.index) + "/" +
                     cause);
    notifyHealth(slot.index, false);
}

bool
WorkerSupervisor::pingWorker(const std::string &socket) const
{
    try {
        ClientConfig ccfg;
        ccfg.timeoutMs = int(cfg_.heartbeatMs);
        ServiceClient client(socket, ccfg);
        return client.ping();
    } catch (const std::exception &) {
        return false;
    }
}

void
WorkerSupervisor::notifyHealth(std::size_t index, bool healthy)
{
    if (healthSink_)
        healthSink_(index, healthy);
}

} // namespace nvmcache
