/**
 * @file
 * Persistent batch evaluation daemon (`nvmcache serve`).
 *
 * EvalServer listens on a Unix socket, speaks the newline-delimited
 * JSON protocol (service/protocol.hh), and executes studies through
 * the uniform Study API on worker threads. Its defining property is
 * that the expensive engine state outlives requests: one RunnerPool
 * holds a long-lived ExperimentRunner per fault-config key, so memo
 * caches, RecordedTrace/PrivateTrace stores, and estimator results
 * are shared across every client — a repeated study request replays
 * entirely from warm stores and returns in milliseconds.
 *
 * Request lifecycle:
 *  - admission control: a bounded FIFO job queue; a request arriving
 *    when the queue is full is rejected immediately with a reason and
 *    a "retryAfterMs" load-shedding hint sized from the observed mean
 *    run time (never silently dropped, never unboundedly buffered);
 *  - deadlines: a run request carrying "deadlineMs" that is still
 *    queued when the deadline expires is rejected ("rejected":true)
 *    instead of executing stale work; an execution whose waiters all
 *    expired is skipped entirely;
 *  - coalescing: a run request identical (by StudyRequest
 *    canonicalKey) to one queued or executing attaches to that
 *    execution instead of occupying a queue slot; every attached
 *    waiter gets its own response, flagged "coalesced":true;
 *  - graceful drain: SIGTERM or a {"op":"shutdown"} request stops
 *    accepting new work, finishes everything queued, flushes all
 *    responses, then exits.
 *
 * Crash recovery: with a persistent store configured, every admitted
 * run is journaled to <journalPath> (default
 * <storeDir>/inflight.v1.json) and removed on completion. A daemon
 * restarted over the same journal re-enqueues the interrupted
 * executions ("service.resumed") — their waiters are gone, but the
 * store-warming work completes, so the original client's retry is a
 * disk hit.
 *
 * Multi-worker serving (`--workers N`): serveMain spawns N worker
 * daemons (fork + exec of the CLI binary) sharing one persistent
 * ResultStore under a WorkerSupervisor that heartbeats, respawns, and
 * quarantines them (service/workers.hh). The front daemon decomposes
 * each study into its shardRequests(), primes the store through the
 * workers via a WorkerFleet, and then runs the study locally against
 * the warmed store — so merged reports are byte-identical to
 * single-process output even while workers are being killed and
 * respawned underneath.
 *
 * The health verb reports a three-state machine: "ok", "degraded"
 * (workers down or quarantined, or the queue at capacity), or
 * "draining" (shutdown in progress). `nvmcache health --probe` turns
 * that into an exit code for scripts.
 *
 * Per-request latency, queue depth, coalesce and rejection counts
 * flow through the process MetricsRegistry under "service.*".
 */

#ifndef NVMCACHE_SERVICE_SERVER_HH
#define NVMCACHE_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/study_registry.hh"
#include "service/protocol.hh"
#include "service/workers.hh"

namespace nvmcache {

class ChaosInjector;

struct ServeConfig
{
    std::string socketPath;
    /** Queued (not yet executing) run requests beyond which new ones
        are rejected with "queue full". */
    unsigned queueDepth = 16;
    /** Concurrent study executions (threads inside this process). */
    unsigned execThreads = 2;
    /**
     * Worker *processes* to spawn (`--workers N`). Each worker is a
     * full daemon on socketPath + ".w<i>" sharing the persistent
     * ResultStore; the front decomposes every run request's study
     * into sub-requests (Study::shardRequests), primes the store
     * through the workers, then executes locally against the warmed
     * store. Requires a configured store (serveMain refuses
     * otherwise); 0 = single-process serving.
     */
    unsigned workers = 0;
    /**
     * Worker daemon sockets the front dispatches to. serveMain fills
     * this when spawning; tests inject already-running daemons here
     * directly (then `workers` is not consulted).
     */
    std::vector<std::string> workerSockets;
    /** Experiment-engine jobs per study (0 = engine default). */
    unsigned jobs = 0;
    /** LLC set shards per simulation run (0 = engine default); a
        request-level "shards" parameter overrides this. */
    unsigned shards = 0;
    /** Supervision interval and heartbeat receive timeout for the
        worker supervisor (`--heartbeat-ms`). */
    unsigned heartbeatMs = 500;
    /** Fleet-side per-shard response deadline (`--job-timeout-ms`);
        a worker that misses it has the shard resubmitted to a
        sibling. < 0 waits forever. */
    int jobTimeoutMs = -1;
    /**
     * Chaos spec (`--chaos-spec`, service/chaos.hh syntax). When
     * nonempty, serveMain arms a ChaosInjector against this daemon's
     * own workers, store, and connections. Empty = no chaos.
     */
    std::string chaosSpec;
    /** Journal interrupted runs for crash recovery. serveMain derives
        journalPath from the store when unset; --no-resume (used for
        the spawned workers, whose shards the front re-primes anyway)
        disables it. */
    bool resume = true;
    /** Inflight-run journal path; "" with resume=true lets serveMain
        derive it, "" with resume=false disables journaling. */
    std::string journalPath;
    /**
     * Optional external stop flag (set from a signal handler — a
     * lock-free atomic store is async-signal-safe); polled by the
     * accept loop so SIGTERM initiates the same graceful drain as a
     * shutdown request.
     */
    const std::atomic<int> *externalStop = nullptr;
    /** Enable trace collection for the daemon's lifetime. */
    bool trace = false;
    /** When non-empty: enable tracing and write the collected trace
        here after the drain completes. */
    std::string traceOut;
};

class EvalServer
{
  public:
    explicit EvalServer(ServeConfig cfg);
    ~EvalServer();

    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    /** Bind + listen + load the resume journal + spawn threads.
        Throws on socket failure. */
    void start();

    /**
     * Block until the server has fully drained and every thread is
     * joined. Returns only after requestStop() (or a shutdown
     * request / external stop flag) triggered the drain.
     */
    void wait();

    /** Initiate graceful drain (idempotent, callable from any thread). */
    void requestStop();

    /** True from start() until wait() finishes tearing down. */
    bool running() const { return running_.load(); }

    /** The long-lived engine state shared by all requests. */
    RunnerPool &runners() { return pool_; }

    /** Dispatch fleet (null without workerSockets); the supervisor's
        health sink targets it. Valid after start(). */
    WorkerFleet *fleet() { return fleet_.get(); }

    /** Wire the worker supervisor in for health reporting. The
        pointer must outlive wait(). */
    void attachSupervisor(WorkerSupervisor *supervisor);

    /** Wire the chaos injector in for health reporting. The pointer
        must outlive wait(). */
    void attachChaos(ChaosInjector *chaos);

    /**
     * Chaos hook: hard-shutdown the (pick mod live)-th client
     * connection. The reader sees EOF, the client sees a dropped
     * connection and must retry. False when no connection is live.
     */
    bool dropConnection(std::uint64_t pick);

  private:
    struct Conn
    {
        int fd = -1;
        std::mutex writeMu;
        std::thread reader;
    };

    /** One pending response target of an execution. */
    struct Waiter
    {
        std::shared_ptr<Conn> conn;
        std::string id;
        std::chrono::steady_clock::time_point enqueued;
        bool coalesced = false;
        /** Absolute expiry derived from the request's "deadlineMs";
            enforced when the execution is dequeued. */
        std::chrono::steady_clock::time_point deadline;
        bool hasDeadline = false;
    };

    /** One coalesced study execution (>= 1 waiters). */
    struct Execution
    {
        StudyRequest request;
        std::string key;
        std::unique_ptr<Study> study; ///< parsed, ready to run
        std::vector<Waiter> waiters;  ///< guarded by queueMu_
        std::size_t queueDepthAtEnqueue = 0;
        unsigned shards = 0; ///< resolved execution knob
        /** Server-side trace id; echoed as "t<N>" to every waiter. */
        std::uint64_t traceId = 0;
        /** Recovered from the journal: no waiters, runs anyway. */
        bool resumed = false;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleRun(const std::shared_ptr<Conn> &conn,
                   const ServiceRequest &req);
    void runExecution(const std::shared_ptr<Execution> &exec);
    void respond(const std::shared_ptr<Conn> &conn,
                 const JsonValue &response);
    /** Reject waiters whose deadline passed while queued; true when
        the execution still has work to do. Called with queueMu_ NOT
        held. */
    bool pruneExpiredWaiters(const std::shared_ptr<Execution> &exec);
    /** "ok" / "degraded" / "draining" (see file comment). */
    std::string healthState();
    /** Load-shedding hint for queue-full rejections (ms). */
    double retryAfterHintMs(std::size_t depth);
    /** Rewrite the inflight journal from inflight_. Caller holds
        queueMu_. No-op without a journal path. */
    void journalRewrite();
    /** Re-enqueue journaled executions (start(), pre-thread). */
    void journalLoad();

    ServeConfig cfg_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> running_{false};
    std::chrono::steady_clock::time_point startTime_;

    RunnerPool pool_;
    /** Dispatch lanes to worker daemons (null without workerSockets). */
    std::unique_ptr<WorkerFleet> fleet_;
    WorkerSupervisor *supervisor_ = nullptr; ///< not owned
    ChaosInjector *chaos_ = nullptr;         ///< not owned

    std::mutex queueMu_;
    std::condition_variable queueCv_;
    std::deque<std::shared_ptr<Execution>> queue_;
    /** canonicalKey -> queued-or-executing execution. */
    std::map<std::string, std::shared_ptr<Execution>> inflight_;

    std::mutex connsMu_;
    std::vector<std::shared_ptr<Conn>> conns_;

    std::thread acceptThread_;
    std::vector<std::thread> workers_;
};

/**
 * The `nvmcache serve` entry. With cfg.workers > 0 it builds a
 * WorkerSupervisor that spawns each worker daemon by fork + exec of
 * this binary (`serve --socket <socketPath>.w<i> ...` against the
 * shared persistent store), heartbeats them every cfg.heartbeatMs,
 * respawns the dead with backoff, and quarantines crash-loopers —
 * wiring worker health into the front's dispatch fleet. A nonempty
 * cfg.chaosSpec arms a deterministic ChaosInjector against the
 * workers, the store, and live connections. Then: install
 * SIGTERM/SIGINT handlers, run an EvalServer until a signal or
 * shutdown request drains it, stop chaos and supervision, and return
 * the process exit code (2 when cfg.workers > 0 without a configured
 * ResultStore — the workers would have nowhere to publish results).
 *
 * Tests override the spawned binary with the NVMCACHE_CLI environment
 * variable; the default is /proc/self/exe.
 */
int serveMain(ServeConfig cfg);

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_SERVER_HH
