/**
 * @file
 * Persistent batch evaluation daemon (`nvmcache serve`).
 *
 * EvalServer listens on a Unix socket, speaks the newline-delimited
 * JSON protocol (service/protocol.hh), and executes studies through
 * the uniform Study API on worker threads. Its defining property is
 * that the expensive engine state outlives requests: one RunnerPool
 * holds a long-lived ExperimentRunner per fault-config key, so memo
 * caches, RecordedTrace/PrivateTrace stores, and estimator results
 * are shared across every client — a repeated study request replays
 * entirely from warm stores and returns in milliseconds.
 *
 * Request lifecycle:
 *  - admission control: a bounded FIFO job queue; a request arriving
 *    when the queue is full is rejected immediately with a reason
 *    (never silently dropped, never unboundedly buffered);
 *  - coalescing: a run request identical (by StudyRequest
 *    canonicalKey) to one queued or executing attaches to that
 *    execution instead of occupying a queue slot; every attached
 *    waiter gets its own response, flagged "coalesced":true;
 *  - graceful drain: SIGTERM or a {"op":"shutdown"} request stops
 *    accepting new work, finishes everything queued, flushes all
 *    responses, then exits.
 *
 * Multi-worker serving (`--workers N`): the front daemon forks N
 * worker daemons sharing one persistent ResultStore, decomposes each
 * study into its shardRequests(), primes the store through the
 * workers via a WorkerFleet (service/workers.hh), and then runs the
 * study locally against the warmed store — so merged reports are
 * byte-identical to single-process output.
 *
 * Per-request latency, queue depth, coalesce and rejection counts
 * flow through the process MetricsRegistry under "service.*".
 */

#ifndef NVMCACHE_SERVICE_SERVER_HH
#define NVMCACHE_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/study_registry.hh"
#include "service/protocol.hh"
#include "service/workers.hh"

namespace nvmcache {

struct ServeConfig
{
    std::string socketPath;
    /** Queued (not yet executing) run requests beyond which new ones
        are rejected with "queue full". */
    unsigned queueDepth = 16;
    /** Concurrent study executions (threads inside this process). */
    unsigned execThreads = 2;
    /**
     * Worker *processes* to fork (`--workers N`). Each worker is a
     * full daemon on socketPath + ".w<i>" sharing the persistent
     * ResultStore; the front decomposes every run request's study
     * into sub-requests (Study::shardRequests), primes the store
     * through the workers, then executes locally against the warmed
     * store. Requires a configured store (serveMain refuses
     * otherwise); 0 = single-process serving.
     */
    unsigned workers = 0;
    /**
     * Worker daemon sockets the front dispatches to. serveMain fills
     * this when forking; tests inject already-running daemons here
     * directly (then `workers` is not consulted).
     */
    std::vector<std::string> workerSockets;
    /** Experiment-engine jobs per study (0 = engine default). */
    unsigned jobs = 0;
    /** LLC set shards per simulation run (0 = engine default); a
        request-level "shards" parameter overrides this. */
    unsigned shards = 0;
    /**
     * Optional external stop flag (a signal handler's
     * sig_atomic_t); polled by the accept loop so SIGTERM initiates
     * the same graceful drain as a shutdown request.
     */
    const volatile std::sig_atomic_t *externalStop = nullptr;
    /** Enable trace collection for the daemon's lifetime. */
    bool trace = false;
    /** When non-empty: enable tracing and write the collected trace
        here after the drain completes. */
    std::string traceOut;
};

class EvalServer
{
  public:
    explicit EvalServer(ServeConfig cfg);
    ~EvalServer();

    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    /** Bind + listen + spawn threads. Throws on socket failure. */
    void start();

    /**
     * Block until the server has fully drained and every thread is
     * joined. Returns only after requestStop() (or a shutdown
     * request / external stop flag) triggered the drain.
     */
    void wait();

    /** Initiate graceful drain (idempotent, callable from any thread). */
    void requestStop();

    /** True from start() until wait() finishes tearing down. */
    bool running() const { return running_.load(); }

    /** The long-lived engine state shared by all requests. */
    RunnerPool &runners() { return pool_; }

  private:
    struct Conn
    {
        int fd = -1;
        std::mutex writeMu;
        std::thread reader;
    };

    /** One pending response target of an execution. */
    struct Waiter
    {
        std::shared_ptr<Conn> conn;
        std::string id;
        std::chrono::steady_clock::time_point enqueued;
        bool coalesced = false;
    };

    /** One coalesced study execution (>= 1 waiters). */
    struct Execution
    {
        StudyRequest request;
        std::string key;
        std::unique_ptr<Study> study; ///< parsed, ready to run
        std::vector<Waiter> waiters;  ///< guarded by queueMu_
        std::size_t queueDepthAtEnqueue = 0;
        unsigned shards = 0; ///< resolved execution knob
        /** Server-side trace id; echoed as "t<N>" to every waiter. */
        std::uint64_t traceId = 0;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void workerLoop();
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleRun(const std::shared_ptr<Conn> &conn,
                   const ServiceRequest &req);
    void runExecution(const std::shared_ptr<Execution> &exec);
    void respond(const std::shared_ptr<Conn> &conn,
                 const JsonValue &response);

    ServeConfig cfg_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> running_{false};
    std::chrono::steady_clock::time_point startTime_;

    RunnerPool pool_;
    /** Dispatch lanes to worker daemons (null without workerSockets). */
    std::unique_ptr<WorkerFleet> fleet_;

    std::mutex queueMu_;
    std::condition_variable queueCv_;
    std::deque<std::shared_ptr<Execution>> queue_;
    /** canonicalKey -> queued-or-executing execution. */
    std::map<std::string, std::shared_ptr<Execution>> inflight_;

    std::mutex connsMu_;
    std::vector<std::shared_ptr<Conn>> conns_;

    std::thread acceptThread_;
    std::vector<std::thread> workers_;
};

/**
 * The `nvmcache serve` entry. With cfg.workers > 0 it first forks
 * that many worker daemons (before any thread exists in this
 * process), each serving socketPath + ".w<i>" against the shared
 * persistent store; the front dispatches study shards to them and
 * reaps them after its own drain. Then: install SIGTERM/SIGINT
 * handlers, run an EvalServer until a signal or shutdown request
 * drains it. Returns the process exit code (2 when cfg.workers > 0
 * without a configured ResultStore — the workers would have nowhere
 * to publish results).
 */
int serveMain(ServeConfig cfg);

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_SERVER_HH
