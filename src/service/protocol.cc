#include "service/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "service/chaos.hh"
#include "workload/workload_registry.hh"

namespace nvmcache {

ServiceRequest
parseServiceRequest(const std::string &line)
{
    const JsonValue v = JsonValue::parse(line);
    if (!v.isObject())
        throw std::runtime_error("request must be a JSON object");

    ServiceRequest req;
    req.op = v.stringOr("op", v.find("study") ? "run" : "");
    req.id = v.stringOr("id", "");
    if (req.op.empty())
        throw std::runtime_error(
            "request needs an \"op\" (or a \"study\" to run)");
    if (req.op == "run") {
        req.study = StudyRequest::fromJson(v);
        if (const JsonValue *dl = v.find("deadlineMs")) {
            if (!dl->isNumber() || dl->number < 0)
                throw std::runtime_error(
                    "deadlineMs must be a non-negative number");
            req.deadlineMs = dl->number;
        }
    }
    if (const JsonValue *tid = v.find("traceId")) {
        // Accept both the echoed "t<N>" string and a bare number.
        if (tid->isString()) {
            const std::string &s = tid->string;
            const std::size_t start = s.starts_with("t") ? 1 : 0;
            std::uint64_t n = 0;
            if (start >= s.size())
                throw std::runtime_error("bad traceId '" + s + "'");
            for (std::size_t i = start; i < s.size(); ++i) {
                if (s[i] < '0' || s[i] > '9')
                    throw std::runtime_error("bad traceId '" + s +
                                             "'");
                n = n * 10 + std::uint64_t(s[i] - '0');
            }
            req.traceId = n;
        } else if (tid->isNumber()) {
            req.traceId = std::uint64_t(tid->number);
        } else {
            throw std::runtime_error(
                "traceId must be a string or number");
        }
    }
    return req;
}

JsonValue
errorResponse(const std::string &id, const std::string &error,
              bool rejected, double retryAfterMs)
{
    JsonValue v = JsonValue::makeObject();
    v.set("id", JsonValue::makeString(id));
    v.set("ok", JsonValue::makeBool(false));
    v.set("error", JsonValue::makeString(error));
    if (rejected)
        v.set("rejected", JsonValue::makeBool(true));
    if (retryAfterMs >= 0)
        v.set("retryAfterMs", JsonValue::makeNumber(retryAfterMs));
    return v;
}

JsonValue
snapshotToJson(const StatsSnapshot &snap, const std::string &prefix)
{
    JsonValue out = JsonValue::makeObject();
    for (const auto &[path, value] : snap.entries) {
        if (!prefix.empty() && path.compare(0, prefix.size(), prefix))
            continue;
        if (value.kind == StatKind::Distribution) {
            JsonValue d = JsonValue::makeObject();
            d.set("count",
                  JsonValue::makeNumber(double(value.dist.count)));
            d.set("sum", JsonValue::makeNumber(value.dist.sum));
            d.set("min", JsonValue::makeNumber(value.dist.minimum));
            d.set("max", JsonValue::makeNumber(value.dist.maximum));
            d.set("mean", JsonValue::makeNumber(value.dist.mean));
            out.set(path, std::move(d));
        } else {
            out.set(path, JsonValue::makeNumber(value.scalar));
        }
    }
    return out;
}

JsonValue
studiesToJson()
{
    JsonValue studies = JsonValue::makeArray();
    const StudyRegistry &registry = StudyRegistry::global();
    for (const std::string &name : registry.names()) {
        auto study = registry.create(name);
        JsonValue v = JsonValue::makeObject();
        v.set("name", JsonValue::makeString(name));
        v.set("description",
              JsonValue::makeString(study->description()));
        JsonValue defaults = JsonValue::makeObject();
        for (const auto &[key, value] : study->defaultConfig())
            defaults.set(key, JsonValue::makeString(value));
        v.set("defaults", std::move(defaults));
        studies.push(std::move(v));
    }
    return studies;
}

JsonValue
workloadsToJson()
{
    auto typeName = [](WorkloadParamDef::Type t) {
        switch (t) {
          case WorkloadParamDef::Type::Num:
            return "num";
          case WorkloadParamDef::Type::NumList:
            return "num-list";
          case WorkloadParamDef::Type::Count:
            return "count";
          case WorkloadParamDef::Type::U32:
            return "u32";
        }
        return "?";
    };

    JsonValue workloads = JsonValue::makeArray();
    const WorkloadRegistry &registry = WorkloadRegistry::global();
    for (const std::string &name : registry.kinds()) {
        const WorkloadKindDef &def = registry.kind(name);
        JsonValue v = JsonValue::makeObject();
        v.set("name", JsonValue::makeString(def.name));
        v.set("suite", JsonValue::makeString(def.suite));
        v.set("description", JsonValue::makeString(def.description));
        JsonValue params = JsonValue::makeArray();
        for (const WorkloadParamDef &p : def.params) {
            JsonValue pv = JsonValue::makeObject();
            pv.set("key", JsonValue::makeString(p.key));
            pv.set("type", JsonValue::makeString(typeName(p.type)));
            pv.set("default", JsonValue::makeString(p.defaultValue));
            pv.set("help", JsonValue::makeString(p.help));
            params.push(std::move(pv));
        }
        v.set("params", std::move(params));
        workloads.push(std::move(v));
    }
    return workloads;
}

namespace {

/**
 * Milliseconds left until @p deadline, clamped to >= 0; -1 when no
 * deadline was set (block forever).
 */
int
remainingMs(bool hasDeadline,
            std::chrono::steady_clock::time_point deadline)
{
    if (!hasDeadline)
        return -1;
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline -
                                   std::chrono::steady_clock::now())
                          .count();
    return left > 0 ? int(left) : 0;
}

} // namespace

bool
LineReader::readLine(std::string &line, int timeoutMs)
{
    timedOut_ = false;
    const bool hasDeadline = timeoutMs >= 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              hasDeadline ? timeoutMs : 0);
    for (;;) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (hasDeadline) {
            // Poll before reading so a blocking fd can never stall
            // past the deadline.
            pollfd pfd{fd_, POLLIN, 0};
            const int left = remainingMs(true, deadline);
            int r;
            do {
                r = ::poll(&pfd, 1, left);
            } while (r < 0 && errno == EINTR);
            if (r < 0)
                return false;
            if (r == 0) {
                timedOut_ = true;
                return false;
            }
        }
        char chunk[4096];
        ssize_t n;
        for (;;) {
            n = ::read(fd_, chunk, sizeof(chunk));
            if (n >= 0)
                break;
            if (errno == EINTR)
                continue; // a signal is not EOF
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Non-blocking fd or SO_RCVTIMEO expiry: wait for
                // readability (bounded by the deadline) and retry.
                pollfd pfd{fd_, POLLIN, 0};
                const int left = remainingMs(hasDeadline, deadline);
                if (hasDeadline && left == 0) {
                    timedOut_ = true;
                    return false;
                }
                int r;
                do {
                    r = ::poll(&pfd, 1, left);
                } while (r < 0 && errno == EINTR);
                if (r < 0)
                    return false;
                if (r == 0) {
                    timedOut_ = true;
                    return false;
                }
                continue;
            }
            return false;
        }
        if (n == 0)
            return false; // EOF
        buf_.append(chunk, std::size_t(n));
    }
}

bool
writeLine(int fd, const std::string &line)
{
    std::string out = line;
    out += '\n';

    // Deterministic chaos faults: an armed stall sleeps before the
    // write; an armed partial-write forces the whole line through
    // 1-byte sends, proving the retry loop reassembles frames
    // correctly. Disabled, this is a single relaxed load.
    std::size_t maxChunk = out.size();
    if (chaosWriteFaultsArmed()) {
        bool partial = false;
        const unsigned stallMs = chaosConsumeWriteFault(partial);
        if (stallMs > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stallMs));
        if (partial)
            maxChunk = 1;
    }

    std::size_t done = 0;
    while (done < out.size()) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of
        // killing the daemon with SIGPIPE.
        const std::size_t want =
            std::min(maxChunk, out.size() - done);
        ssize_t n;
        do {
            n = ::send(fd, out.data() + done, want, MSG_NOSIGNAL);
        } while (n < 0 && errno == EINTR);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Kernel buffer full (or a non-blocking fd): wait for
            // writability and retry rather than dropping the frame.
            pollfd pfd{fd, POLLOUT, 0};
            int r;
            do {
                r = ::poll(&pfd, 1, -1);
            } while (r < 0 && errno == EINTR);
            if (r < 0)
                return false;
            continue;
        }
        if (n <= 0)
            return false;
        done += std::size_t(n);
    }
    return true;
}

} // namespace nvmcache
