#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>

#include "service/chaos.hh"
#include "service/client.hh"
#include "store/result_store.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace_events.hh"

namespace nvmcache {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
bindUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    // A previous daemon instance that died hard leaves the node behind;
    // a live instance would still fail bind with EADDRINUSE after this.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("bind " + path + ": " +
                                 std::strerror(err));
    }
    if (::listen(fd, 64) < 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throw std::runtime_error("listen " + path + ": " +
                                 std::strerror(err));
    }
    return fd;
}

} // namespace

EvalServer::EvalServer(ServeConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.execThreads == 0)
        cfg_.execThreads = 1;
}

EvalServer::~EvalServer()
{
    if (running_.load()) {
        requestStop();
        wait();
    }
}

void
EvalServer::start()
{
    listenFd_ = bindUnixSocket(cfg_.socketPath);
    running_.store(true);
    startTime_ = std::chrono::steady_clock::now();
    if (cfg_.trace || !cfg_.traceOut.empty())
        setTracingEnabled(true);
    MetricsRegistry::global().gauge("service.queueDepth").set(0.0);
    MetricsRegistry::global().gauge("service.uptimeSeconds").set(0.0);
    if (!cfg_.workerSockets.empty()) {
        WorkerFleetConfig wf;
        wf.sockets = cfg_.workerSockets;
        wf.jobTimeoutMs = cfg_.jobTimeoutMs;
        fleet_ = std::make_unique<WorkerFleet>(std::move(wf));
    }
    // Recover interrupted work before any thread can race the queue.
    journalLoad();
    for (unsigned i = 0; i < cfg_.execThreads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
EvalServer::attachSupervisor(WorkerSupervisor *supervisor)
{
    supervisor_ = supervisor;
}

void
EvalServer::attachChaos(ChaosInjector *chaos)
{
    chaos_ = chaos;
}

void
EvalServer::requestStop()
{
    stopping_.store(true);
    queueCv_.notify_all();
}

void
EvalServer::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Accept loop is down; workers drain whatever is queued, then exit.
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    // No execution can dispatch to the fleet anymore; joining its
    // dispatchers here keeps teardown ordered before the sockets go.
    fleet_.reset();
    // All responses are flushed. Kick reader threads off their blocking
    // read()s and join them.
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        for (const auto &conn : conns_)
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (;;) {
        std::shared_ptr<Conn> conn;
        {
            std::lock_guard<std::mutex> lk(connsMu_);
            if (conns_.empty())
                break;
            conn = conns_.back();
            conns_.pop_back();
        }
        if (conn->reader.joinable())
            conn->reader.join();
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(cfg_.socketPath.c_str());
    running_.store(false);
}

bool
EvalServer::dropConnection(std::uint64_t pick)
{
    std::lock_guard<std::mutex> lk(connsMu_);
    std::vector<Conn *> live;
    for (const auto &conn : conns_)
        if (conn->fd >= 0)
            live.push_back(conn.get());
    if (live.empty())
        return false;
    // SHUT_RDWR, not close: the reader thread still owns the fd and
    // will see EOF, run its teardown, and leave the fd for wait().
    ::shutdown(live[pick % live.size()]->fd, SHUT_RDWR);
    MetricsRegistry::global()
        .counter("service.connectionsDropped")
        .inc();
    return true;
}

void
EvalServer::acceptLoop()
{
    while (!stopping_.load()) {
        if (cfg_.externalStop && *cfg_.externalStop) {
            requestStop();
            break;
        }
        pollfd pfd{listenFd_, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lk(connsMu_);
            conns_.push_back(conn);
        }
        MetricsRegistry::global().counter("service.connections").inc();
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
    }
    // No new work can arrive; let workers finish the queue and exit.
    queueCv_.notify_all();
}

void
EvalServer::readerLoop(std::shared_ptr<Conn> conn)
{
    LineReader reader(conn->fd);
    std::string line;
    while (reader.readLine(line)) {
        if (line.empty())
            continue;
        handleLine(conn, line);
    }
}

std::string
EvalServer::healthState()
{
    if (stopping_.load())
        return "draining";
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        depth = queue_.size();
    }
    if (depth >= cfg_.queueDepth)
        return "degraded";
    if (supervisor_ && !supervisor_->atFullCapacity())
        return "degraded";
    if (fleet_ && fleet_->healthyCount() < fleet_->size())
        return "degraded";
    return "ok";
}

double
EvalServer::retryAfterHintMs(std::size_t depth)
{
    // How long until a queue slot frees up: the queue ahead of the
    // client divided by our drain rate, using the observed mean run
    // time (a fresh daemon guesses 100 ms). Clamped so one pathological
    // run can't tell clients to go away for an hour.
    const StatValue runStat = MetricsRegistry::global()
                                  .distribution("service.runSeconds")
                                  .value();
    const double meanMs = runStat.dist.count > 0
                              ? runStat.dist.mean * 1000.0
                              : 100.0;
    const double hint =
        meanMs * double(depth + 1) / double(cfg_.execThreads);
    return std::clamp(hint, 50.0, 10000.0);
}

void
EvalServer::handleLine(const std::shared_ptr<Conn> &conn,
                       const std::string &line)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    ServiceRequest req;
    try {
        req = parseServiceRequest(line);
    } catch (const std::exception &e) {
        metrics.counter("service.requests.invalid").inc();
        respond(conn, errorResponse("", e.what()));
        return;
    }

    // Per-verb request counters; anything outside the protocol's verb
    // set lands in one "unknown" bucket so a misbehaving client can't
    // mint unbounded metric paths.
    static const char *const kOps[] = {"ping",   "studies",
                                       "workloads", "metrics",
                                       "stats",  "health", "trace",
                                       "shutdown", "run"};
    bool known = false;
    for (const char *op : kOps)
        known = known || req.op == op;
    metrics
        .counter("service.requests." +
                 (known ? req.op : std::string("unknown")))
        .inc();

    if (req.op == "ping") {
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("op", JsonValue::makeString("ping"));
        respond(conn, v);
    } else if (req.op == "studies") {
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("studies", studiesToJson());
        respond(conn, v);
    } else if (req.op == "workloads") {
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("workloads", workloadsToJson());
        respond(conn, v);
    } else if (req.op == "metrics") {
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("metrics",
              snapshotToJson(MetricsRegistry::global().snapshot()));
        respond(conn, v);
    } else if (req.op == "stats") {
        // Prometheus text exposition of the full registry, carried as
        // one JSON string so the line framing holds; a scrape adapter
        // just unwraps "stats".
        metrics.gauge("service.uptimeSeconds")
            .set(secondsSince(startTime_));
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("contentType", JsonValue::makeString(
                                 "text/plain; version=0.0.4"));
        v.set("stats", JsonValue::makeString(
                           metrics.snapshot().toPrometheus()));
        respond(conn, v);
    } else if (req.op == "health") {
        metrics.gauge("service.uptimeSeconds")
            .set(secondsSince(startTime_));
        std::size_t depth;
        {
            std::lock_guard<std::mutex> lk(queueMu_);
            depth = queue_.size();
        }
        JsonValue h = JsonValue::makeObject();
        h.set("state", JsonValue::makeString(healthState()));
        h.set("uptimeSeconds",
              JsonValue::makeNumber(secondsSince(startTime_)));
        h.set("queueDepth", JsonValue::makeNumber(double(depth)));
        h.set("queueCapacity",
              JsonValue::makeNumber(double(cfg_.queueDepth)));
        h.set("workers",
              JsonValue::makeNumber(double(cfg_.workerSockets.size())));
        h.set("execThreads",
              JsonValue::makeNumber(double(cfg_.execThreads)));
        h.set("runnerPoolSize",
              JsonValue::makeNumber(double(pool_.size())));
        h.set("draining", JsonValue::makeBool(stopping_.load()));
        h.set("tracing", JsonValue::makeBool(tracingEnabled()));
        if (fleet_)
            h.set("workersHealthy",
                  JsonValue::makeNumber(double(fleet_->healthyCount())));
        if (supervisor_) {
            h.set("workersAlive",
                  JsonValue::makeNumber(
                      double(supervisor_->aliveWorkers())));
            h.set("workersQuarantined",
                  JsonValue::makeNumber(
                      double(supervisor_->quarantinedWorkers())));
            h.set("workerRestarts",
                  JsonValue::makeNumber(
                      double(supervisor_->restarts())));
        }
        if (chaos_) {
            h.set("chaosInjected",
                  JsonValue::makeNumber(double(chaos_->injected())));
            JsonValue log = JsonValue::makeArray();
            for (const std::string &entry : chaos_->log())
                log.push(JsonValue::makeString(entry));
            h.set("chaosLog", std::move(log));
        }
        h.set("requests", snapshotToJson(metrics.snapshot(),
                                         "service.requests."));
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("health", std::move(h));
        respond(conn, v);
    } else if (req.op == "trace") {
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("tracing", JsonValue::makeBool(tracingEnabled()));
        v.set("trace", traceEventsToJson(req.traceId));
        respond(conn, v);
    } else if (req.op == "shutdown") {
        JsonValue v = JsonValue::makeObject();
        v.set("id", JsonValue::makeString(req.id));
        v.set("ok", JsonValue::makeBool(true));
        v.set("op", JsonValue::makeString("shutdown"));
        respond(conn, v);
        requestStop();
    } else if (req.op == "run") {
        handleRun(conn, req);
    } else {
        respond(conn,
                errorResponse(req.id, "unknown op '" + req.op + "'"));
    }
}

void
EvalServer::handleRun(const std::shared_ptr<Conn> &conn,
                      const ServiceRequest &req)
{
    // Create and parse up front so malformed requests fail immediately
    // instead of occupying a queue slot.
    std::unique_ptr<Study> study;
    unsigned shards = cfg_.shards;
    try {
        study = StudyRegistry::global().create(req.study.kind);
        ParamMap params = req.study.params;
        shards = extractShardsParam(params, cfg_.shards);
        study->parse(params);
    } catch (const std::exception &e) {
        respond(conn, errorResponse(req.id, e.what()));
        return;
    }

    Waiter waiter;
    waiter.conn = conn;
    waiter.id = req.id;
    waiter.enqueued = std::chrono::steady_clock::now();
    if (req.deadlineMs > 0) {
        waiter.hasDeadline = true;
        waiter.deadline =
            waiter.enqueued +
            std::chrono::milliseconds(std::int64_t(req.deadlineMs));
    }

    MetricsRegistry &metrics = MetricsRegistry::global();
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        const std::string key = req.study.canonicalKey();
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // Identical request already queued or executing: share its
            // execution rather than occupying a queue slot.
            waiter.coalesced = true;
            it->second->waiters.push_back(std::move(waiter));
            metrics.counter("service.coalesced").inc();
            return;
        }
        if (stopping_.load()) {
            respond(conn, errorResponse(req.id, "server is draining",
                                        /*rejected=*/true));
            metrics.counter("service.rejectedDraining").inc();
            return;
        }
        if (queue_.size() >= cfg_.queueDepth) {
            respond(conn,
                    errorResponse(req.id,
                                  "queue full (depth " +
                                      std::to_string(cfg_.queueDepth) +
                                      ")",
                                  /*rejected=*/true,
                                  retryAfterHintMs(queue_.size())));
            metrics.counter("service.rejectedQueueFull").inc();
            return;
        }
        auto exec = std::make_shared<Execution>();
        exec->request = req.study;
        exec->key = key;
        exec->study = std::move(study);
        exec->queueDepthAtEnqueue = queue_.size();
        exec->shards = shards;
        exec->traceId = newTraceId();
        exec->waiters.push_back(std::move(waiter));
        inflight_.emplace(key, exec);
        queue_.push_back(std::move(exec));
        metrics.counter("service.enqueued").inc();
        metrics.gauge("service.queueDepth").set(double(queue_.size()));
        journalRewrite();
    }
    queueCv_.notify_one();
}

bool
EvalServer::pruneExpiredWaiters(const std::shared_ptr<Execution> &exec)
{
    const auto now = std::chrono::steady_clock::now();
    std::vector<Waiter> expired;
    bool runnable;
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        auto split = std::stable_partition(
            exec->waiters.begin(), exec->waiters.end(),
            [now](const Waiter &w) {
                return !w.hasDeadline || now < w.deadline;
            });
        expired.assign(std::make_move_iterator(split),
                       std::make_move_iterator(exec->waiters.end()));
        exec->waiters.erase(split, exec->waiters.end());
        runnable = !exec->waiters.empty() || exec->resumed;
        if (!runnable) {
            // Nobody left to answer: drop the execution before it
            // burns a run — a coalescing peer arriving later starts
            // fresh.
            inflight_.erase(exec->key);
            journalRewrite();
        }
    }
    // Counters first, responses second: a client that reacts to its
    // rejection by querying metrics must already see both.
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("service.deadlineExpired").inc(expired.size());
    if (!runnable)
        metrics.counter("service.deadlineSkipped").inc();
    for (const Waiter &w : expired) {
        respond(w.conn,
                errorResponse(
                    w.id,
                    "deadlineMs expired after " +
                        std::to_string(secondsSince(w.enqueued)) +
                        " s in queue",
                    /*rejected=*/true));
    }
    return runnable;
}

void
EvalServer::workerLoop()
{
    for (;;) {
        std::shared_ptr<Execution> exec;
        {
            std::unique_lock<std::mutex> lk(queueMu_);
            queueCv_.wait(lk, [this] {
                return !queue_.empty() ||
                       (stopping_.load() && queue_.empty());
            });
            // Drain semantics: exit only once the queue is empty.
            if (queue_.empty())
                return;
            exec = std::move(queue_.front());
            queue_.pop_front();
            MetricsRegistry::global()
                .gauge("service.queueDepth")
                .set(double(queue_.size()));
        }
        // Deadlines are enforced at dequeue: work whose every waiter
        // gave up while queued is stale — reject it instead of
        // running it.
        if (!pruneExpiredWaiters(exec))
            continue;
        runExecution(exec);
    }
}

void
EvalServer::runExecution(const std::shared_ptr<Execution> &exec)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    const auto runStart = std::chrono::steady_clock::now();

    const std::string traceTag =
        "t" + std::to_string(exec->traceId);

    JsonValue response = JsonValue::makeObject();
    bool ok = true;
    try {
        // Every span of this execution carries the request's trace id,
        // so {"op":"trace","traceId":"t<N>"} recovers just this run.
        TraceScope scope(
            TraceContext{"req/" + traceTag, exec->traceId});
        TraceSpan span("service.run", "service",
                       TraceContext::current().path);
        StudyRunOptions opts;
        opts.jobs = cfg_.jobs;
        opts.shards = exec->shards;
        opts.pool = &pool_;
        if (fleet_) {
            // Warm the shared persistent store through the worker
            // daemons first; the local run below then replays from
            // disk. Priming is best-effort — any shard the fleet
            // could not place simply simulates locally.
            const std::vector<StudyRequest> shards =
                exec->study->shardRequests();
            if (!shards.empty())
                fleet_->primeAll(shards);
        }
        const StatsSnapshot before = metrics.snapshot();
        const StudyReport report = runStudy(*exec->study, opts);
        const StatsSnapshot delta = metrics.snapshot().diff(before);
        response.set("ok", JsonValue::makeBool(true));
        response.set("study", JsonValue::makeString(exec->request.kind));
        response.set("metrics", snapshotToJson(delta, "runner."));
        response.set("result", report.result);
    } catch (const std::exception &e) {
        ok = false;
        response.set("ok", JsonValue::makeBool(false));
        response.set("error", JsonValue::makeString(e.what()));
    }
    response.set("traceId", JsonValue::makeString(traceTag));
    const double runSeconds = secondsSince(runStart);
    metrics.distribution("service.runSeconds").add(runSeconds);
    metrics.counter(ok ? "service.completed" : "service.failed").inc();
    response.set("runSeconds", JsonValue::makeNumber(runSeconds));
    response.set("queueDepth",
                 JsonValue::makeNumber(
                     double(exec->queueDepthAtEnqueue)));

    // Detach from the coalescing map *before* responding so a new
    // identical request starts a fresh execution instead of attaching
    // to one whose waiters are already being flushed. The journal
    // entry goes with it: the work is done, a crash after this point
    // loses nothing.
    std::vector<Waiter> waiters;
    {
        std::lock_guard<std::mutex> lk(queueMu_);
        inflight_.erase(exec->key);
        journalRewrite();
        waiters = std::move(exec->waiters);
    }
    for (const Waiter &w : waiters) {
        JsonValue v = response;
        v.set("id", JsonValue::makeString(w.id));
        v.set("coalesced", JsonValue::makeBool(w.coalesced));
        const double queueSeconds = secondsSince(w.enqueued);
        v.set("queueSeconds", JsonValue::makeNumber(queueSeconds));
        metrics.distribution("service.queueSeconds").add(queueSeconds);
        respond(w.conn, v);
    }
}

void
EvalServer::journalRewrite()
{
    if (cfg_.journalPath.empty())
        return;
    JsonValue doc = JsonValue::makeObject();
    doc.set("version", JsonValue::makeNumber(1));
    JsonValue entries = JsonValue::makeArray();
    for (const auto &[key, exec] : inflight_)
        entries.push(exec->request.toJson());
    doc.set("inflight", std::move(entries));
    // Temp-and-rename, same discipline as the store: a crash mid-write
    // leaves the previous journal intact, never a torn one.
    const std::string tmp = cfg_.journalPath + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("serve: cannot write journal ", tmp,
                 "; crash recovery disabled");
            cfg_.journalPath.clear();
            return;
        }
        out << doc.dump() << "\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp, cfg_.journalPath, ec);
    if (ec)
        warn("serve: journal rename failed: ", ec.message());
}

void
EvalServer::journalLoad()
{
    if (cfg_.journalPath.empty())
        return;
    std::ifstream in(cfg_.journalPath);
    if (!in)
        return; // first boot, or clean shutdown removed nothing to do
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (text.find_first_not_of(" \t\r\n") == std::string::npos)
        return;
    JsonValue doc;
    try {
        doc = JsonValue::parse(text);
    } catch (const std::exception &e) {
        warn("serve: ignoring unreadable journal ", cfg_.journalPath,
             ": ", e.what());
        return;
    }
    const JsonValue *entries = doc.find("inflight");
    if (!entries || !entries->isArray())
        return;
    MetricsRegistry &metrics = MetricsRegistry::global();
    std::size_t resumed = 0;
    std::lock_guard<std::mutex> lk(queueMu_);
    for (const JsonValue &entry : entries->items) {
        try {
            StudyRequest request = StudyRequest::fromJson(entry);
            const std::string key = request.canonicalKey();
            if (inflight_.count(key))
                continue;
            auto exec = std::make_shared<Execution>();
            exec->study =
                StudyRegistry::global().create(request.kind);
            ParamMap params = request.params;
            exec->shards = extractShardsParam(params, cfg_.shards);
            exec->study->parse(params);
            exec->request = std::move(request);
            exec->key = key;
            exec->traceId = newTraceId();
            exec->resumed = true; // no waiters; runs for the store
            inflight_.emplace(key, exec);
            queue_.push_back(std::move(exec));
            resumed += 1;
        } catch (const std::exception &e) {
            warn("serve: skipping journaled run: ", e.what());
        }
    }
    if (resumed > 0) {
        metrics.counter("service.resumed").inc(resumed);
        metrics.gauge("service.queueDepth").set(double(queue_.size()));
        inform("serve: resumed ", resumed,
               " interrupted run(s) from ", cfg_.journalPath);
    }
    journalRewrite();
}

void
EvalServer::respond(const std::shared_ptr<Conn> &conn,
                    const JsonValue &response)
{
    std::lock_guard<std::mutex> lk(conn->writeMu);
    writeLine(conn->fd, response.dump());
}

namespace {

/** Lock-free atomic: stores from the handler are async-signal-safe
    and visible to the accept loop without a data race. */
std::atomic<int> g_serveStop{0};
extern "C" void
serveStopHandler(int)
{
    g_serveStop.store(1, std::memory_order_relaxed);
}

/**
 * Binary to exec for spawned workers: NVMCACHE_CLI when set (tests
 * point it at the built CLI), else this very executable.
 */
std::string
workerExePath()
{
    if (const char *cli = std::getenv("NVMCACHE_CLI"))
        if (*cli)
            return cli;
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        throw std::runtime_error(
            "cannot resolve /proc/self/exe for worker spawning (set "
            "NVMCACHE_CLI)");
    buf[n] = '\0';
    return buf;
}

} // namespace

int
serveMain(ServeConfig cfg)
{
    std::unique_ptr<WorkerSupervisor> supervisor;
    if (cfg.workers > 0 && cfg.workerSockets.empty()) {
        if (!ResultStore::global()) {
            warn("serve: --workers requires a persistent store "
                 "(--store-dir or NVMCACHE_STORE) — the workers "
                 "would have nowhere to publish results");
            return 2;
        }
        for (unsigned i = 0; i < cfg.workers; ++i)
            cfg.workerSockets.push_back(cfg.socketPath + ".w" +
                                        std::to_string(i));
        // Workers are spawned (and respawned, after crashes) by fork +
        // exec of the CLI binary: exec resets the child to a clean
        // single-threaded process, so the supervisor can safely spawn
        // long after this daemon has threads.
        WorkerSupervisorConfig sup;
        sup.sockets = cfg.workerSockets;
        sup.heartbeatMs = cfg.heartbeatMs;
        const std::string exe = workerExePath();
        const std::string storeDir = ResultStore::global()->dir();
        const std::vector<std::string> sockets = cfg.workerSockets;
        const unsigned jobs = cfg.jobs;
        const unsigned shards = cfg.shards;
        const unsigned queueDepth = cfg.queueDepth;
        const unsigned execThreads = cfg.execThreads;
        sup.command = [=](std::size_t index) {
            std::vector<std::string> argv = {
                exe,          "serve",
                "--socket",   sockets[index],
                "--store-dir", storeDir,
                "--queue-depth", std::to_string(queueDepth),
                "--exec-threads", std::to_string(execThreads),
                // The front re-primes every interrupted study itself;
                // a worker journaling its sub-requests would fight
                // the front over the shared journal file.
                "--no-resume",
            };
            if (jobs > 0) {
                argv.push_back("--jobs");
                argv.push_back(std::to_string(jobs));
            }
            if (shards > 0) {
                argv.push_back("--shards");
                argv.push_back(std::to_string(shards));
            }
            return argv;
        };
        supervisor = std::make_unique<WorkerSupervisor>(sup);
    }
    if (cfg.resume && cfg.journalPath.empty() && ResultStore::global())
        cfg.journalPath =
            ResultStore::global()->dir() + "/inflight.v1.json";
    if (!cfg.resume)
        cfg.journalPath.clear();

    g_serveStop = 0;
    cfg.externalStop = &g_serveStop;

    struct sigaction sa{};
    sa.sa_handler = serveStopHandler;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    EvalServer server(cfg);
    server.start();

    if (supervisor) {
        supervisor->setHealthSink(
            [&server](std::size_t index, bool healthy) {
                if (WorkerFleet *fleet = server.fleet())
                    fleet->setWorkerHealthy(index, healthy);
            });
        server.attachSupervisor(supervisor.get());
        supervisor->start();
    }

    std::unique_ptr<ChaosInjector> chaos;
    if (!cfg.chaosSpec.empty()) {
        const ChaosSpec spec = parseChaosSpec(cfg.chaosSpec);
        ChaosTargets targets;
        if (supervisor) {
            WorkerSupervisor *sup = supervisor.get();
            targets.signalWorker = [sup](std::uint64_t pick, int sig) {
                return sup->signalWorker(pick, sig);
            };
        }
        if (ResultStore::global())
            targets.damageRecord = [](std::uint64_t pick,
                                      bool truncate) {
                return !damageStoreRecord(*ResultStore::global(), pick,
                                          truncate)
                            .empty();
            };
        targets.dropConnection = [&server](std::uint64_t pick) {
            return server.dropConnection(pick);
        };
        chaos = std::make_unique<ChaosInjector>(spec,
                                                std::move(targets));
        server.attachChaos(chaos.get());
        inform("serve: chaos armed (", spec.totalEvents(),
               " event(s), seed ", spec.seed, ")");
        chaos->start();
    }

    server.wait();

    if (chaos)
        chaos->stop();
    if (supervisor)
        supervisor->stop();

    if (!cfg.traceOut.empty())
        writeTraceFile(cfg.traceOut);
    return 0;
}

} // namespace nvmcache
