/**
 * @file
 * Wire protocol of the nvmcache evaluation daemon.
 *
 * Transport: a Unix stream socket carrying newline-delimited JSON —
 * every request and every response is exactly one LF-terminated line
 * (JsonValue::dump never emits a newline). Multiple requests may be
 * in flight per connection; responses carry the request's "id" and
 * may arrive in any order.
 *
 * Requests:
 *   {"op":"run","id":"r1","study":"figure","params":{"scale":0.25}}
 *   {"op":"ping"}            liveness probe
 *   {"op":"studies"}         registry listing with default configs
 *   {"op":"metrics"}         server-side engine/service metrics
 *   {"op":"stats"}           Prometheus text exposition of the same
 *   {"op":"health"}          uptime, queue depth, per-verb counters
 *   {"op":"trace"}           collected trace events; an optional
 *                            "traceId" member ("t7" or 7) filters to
 *                            one request's spans
 *   {"op":"shutdown"}        acknowledge, then drain and exit
 * "op" defaults to "run" when a "study" member is present. Params
 * values may be strings, numbers, or bools.
 *
 * Run requests may carry "deadlineMs": a relative deadline in
 * milliseconds from receipt. A run still queued when its deadline
 * expires is rejected with a reason instead of executing stale work.
 *
 * Responses (one object per request):
 *   {"id":"r1","ok":true,"study":"figure","coalesced":false,
 *    "queueDepth":0,"queueSeconds":...,"runSeconds":...,
 *    "traceId":"t7",
 *    "metrics":{"runner.memo.hits":...},"result":{...}}
 *   {"id":"r1","ok":false,"error":"...","rejected":true,
 *    "retryAfterMs":250}
 * "rejected" marks admission-control refusals (queue full, draining,
 * deadline expired in queue): the request was never run and can be
 * retried elsewhere/later. "retryAfterMs", when present, is the
 * server's load-shedding hint — how long a well-behaved client should
 * back off before retrying (ServiceClient::runWithRetry honors it).
 * "metrics" is the delta of the engine's runner.* stats over the
 * execution — a warm request shows memo hits and zero simulations.
 * "traceId" names the server-side trace of this execution (coalesced
 * requests share the winning execution's id); pass it back in an
 * {"op":"trace"} request to pull that run's span dump while tracing
 * is enabled. "result" is deterministic: byte-identical to the same
 * study run through the direct CLI path.
 */

#ifndef NVMCACHE_SERVICE_PROTOCOL_HH
#define NVMCACHE_SERVICE_PROTOCOL_HH

#include <string>

#include "core/study_registry.hh"
#include "util/json.hh"
#include "util/metrics.hh"

namespace nvmcache {

/** One parsed protocol request. */
struct ServiceRequest
{
    std::string op; ///< "run", "ping", "studies", "metrics", "stats",
                    ///< "health", "trace", "shutdown"
    std::string id; ///< client-chosen, echoed verbatim ("" allowed)
    StudyRequest study;         ///< op == "run" only
    std::uint64_t traceId = 0;  ///< op == "trace" filter (0 = all)
    double deadlineMs = 0;      ///< op == "run"; 0 = no deadline
};

/**
 * Parse one request line. Throws std::runtime_error (with the JSON
 * byte offset or the missing member) on malformed input.
 */
ServiceRequest parseServiceRequest(const std::string &line);

/**
 * {"id":...,"ok":false,"error":...,"rejected":...,"retryAfterMs":...}.
 * @p retryAfterMs < 0 omits the backoff hint.
 */
JsonValue errorResponse(const std::string &id, const std::string &error,
                        bool rejected = false,
                        double retryAfterMs = -1.0);

/**
 * Flatten a StatsSnapshot into a JSON object keyed by dotted path.
 * Counters/gauges become numbers; distributions become
 * {count,sum,min,max,mean} objects. @p prefix keeps only entries
 * whose path starts with it ("" keeps everything).
 */
JsonValue snapshotToJson(const StatsSnapshot &snap,
                         const std::string &prefix = "");

/** Registry listing for the "studies" op. */
JsonValue studiesToJson();

/**
 * Workload-registry listing for the "workloads" op: every kind with
 * its suite, description, and (for parameterized families) the
 * parameter schema — key, type, default, and help per parameter.
 */
JsonValue workloadsToJson();

// --- line-framed socket I/O -----------------------------------------

/**
 * Buffered LF-delimited reader over a blocking fd.
 *
 * All reads retry on EINTR (a signal must never be mistaken for EOF)
 * and on EAGAIN/EWOULDBLOCK via poll (so a socket someone flipped to
 * non-blocking, or one with SO_RCVTIMEO set, still reads correctly).
 * An optional timeout turns a silent peer into a distinguishable
 * condition: readLine returns false and timedOut() reports which of
 * EOF or expiry ended the call.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /**
     * Next line with the trailing '\n' stripped; false on EOF or
     * error with no buffered line, or when @p timeoutMs elapsed
     * before a full line arrived (check timedOut() to tell the two
     * apart). timeoutMs < 0 blocks forever.
     */
    bool readLine(std::string &line, int timeoutMs = -1);

    /** True when the last readLine returned false due to expiry. */
    bool timedOut() const { return timedOut_; }

  private:
    int fd_;
    std::string buf_;
    bool timedOut_ = false;
};

/**
 * Write @p line plus '\n', retrying partial writes, EINTR, and
 * EAGAIN; false on error. Honors armed chaos write faults
 * (service/chaos.hh): injected stalls and forced 1-byte chunking
 * exercise the retry loop without changing what the peer reads.
 */
bool writeLine(int fd, const std::string &line);

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_PROTOCOL_HH
