/**
 * @file
 * Client side of the evaluation daemon protocol.
 *
 * ServiceClient wraps one Unix-socket connection: it frames requests
 * as protocol lines, reads response lines back, and offers typed
 * helpers for each op. The synchronous request() helper covers the
 * CLI; send()/receive() are split out so tests can put several
 * requests in flight on one connection (coalescing, queue-full).
 *
 * Failure behavior is configurable instead of block-forever:
 *  - timeoutMs bounds every receive (and, transitively, request);
 *    expiry throws a diagnostic naming the --timeout-ms knob so a CLI
 *    user knows which limit fired;
 *  - runWithRetry layers a retry budget with jittered exponential
 *    backoff over run(): connection failures, timeouts, and
 *    admission-control rejections are retried on a fresh connection,
 *    honoring the server's retryAfterMs load-shedding hint when one
 *    is present. The jitter stream is seeded through deriveSeed, so
 *    a given client configuration backs off deterministically.
 */

#ifndef NVMCACHE_SERVICE_CLIENT_HH
#define NVMCACHE_SERVICE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/study_registry.hh"
#include "service/protocol.hh"
#include "util/json.hh"

namespace nvmcache {

/** Failure-handling knobs; the default preserves blocking behavior. */
struct ClientConfig
{
    /** Per-receive deadline; < 0 blocks forever (legacy behavior). */
    int timeoutMs = -1;
    /** Extra attempts after the first failed one (runWithRetry). */
    unsigned retries = 0;
    /** First backoff; doubles per attempt up to backoffMaxMs. */
    unsigned backoffBaseMs = 50;
    unsigned backoffMaxMs = 2000;
    /** deriveSeed stream for backoff jitter (deterministic). */
    std::uint64_t jitterSeed = 0;
    /** Relative per-request deadline forwarded to the server
        ("deadlineMs" protocol member); 0 = none. */
    double deadlineMs = 0;
};

class ServiceClient
{
  public:
    /** Connect to a serving daemon. Throws on connection failure. */
    explicit ServiceClient(const std::string &socketPath,
                           ClientConfig cfg = {});
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Fire one raw request line (already-dumped JSON object). */
    void send(const std::string &line);
    /** Fire one request object. */
    void send(const JsonValue &request);

    /**
     * Block for the next response line. Throws std::runtime_error on
     * EOF (daemon went away), malformed JSON, or — when cfg.timeoutMs
     * is set — deadline expiry (the message names --timeout-ms).
     */
    JsonValue receive();

    /** send() + receive() — valid while exactly one is in flight. */
    JsonValue request(const JsonValue &req);

    // --- typed ops --------------------------------------------------

    /** Run a study; returns the full response object. */
    JsonValue run(const StudyRequest &study, const std::string &id = "");
    bool ping();
    JsonValue studies();
    JsonValue metrics();
    JsonValue health();
    /** Ask the daemon to drain and exit; returns its acknowledgement. */
    JsonValue shutdown();

    const ClientConfig &config() const { return cfg_; }

  private:
    int fd_ = -1;
    ClientConfig cfg_;
    std::string socketPath_;
    std::unique_ptr<LineReader> reader_;
};

/**
 * Run @p study against the daemon at @p socketPath with
 * cfg.retries + 1 total attempts. Each attempt uses a fresh
 * connection; between attempts the caller sleeps
 * min(backoffBase * 2^attempt, backoffMax) plus deterministic jitter,
 * or the server's retryAfterMs hint when a rejection carried one
 * (whichever is larger). A response with "rejected":true counts as
 * retryable; any other server-side error (bad study name, malformed
 * parameters — deterministic failures that would fail again) is
 * returned as-is. Throws only after the final attempt fails at the
 * connection level; the exception summarizes every attempt's fate.
 * Retry attempts are counted under "client.retries".
 */
JsonValue runWithRetry(const std::string &socketPath,
                       const StudyRequest &study,
                       const ClientConfig &cfg,
                       const std::string &id = "");

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_CLIENT_HH
