/**
 * @file
 * Client side of the evaluation daemon protocol.
 *
 * ServiceClient wraps one Unix-socket connection: it frames requests
 * as protocol lines, reads response lines back, and offers typed
 * helpers for each op. The synchronous request() helper covers the
 * CLI; send()/receive() are split out so tests can put several
 * requests in flight on one connection (coalescing, queue-full).
 */

#ifndef NVMCACHE_SERVICE_CLIENT_HH
#define NVMCACHE_SERVICE_CLIENT_HH

#include <memory>
#include <string>

#include "core/study_registry.hh"
#include "service/protocol.hh"
#include "util/json.hh"

namespace nvmcache {

class ServiceClient
{
  public:
    /** Connect to a serving daemon. Throws on connection failure. */
    explicit ServiceClient(const std::string &socketPath);
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Fire one raw request line (already-dumped JSON object). */
    void send(const std::string &line);
    /** Fire one request object. */
    void send(const JsonValue &request);

    /**
     * Block for the next response line. Throws std::runtime_error on
     * EOF (daemon went away) or malformed JSON.
     */
    JsonValue receive();

    /** send() + receive() — valid while exactly one is in flight. */
    JsonValue request(const JsonValue &req);

    // --- typed ops --------------------------------------------------

    /** Run a study; returns the full response object. */
    JsonValue run(const StudyRequest &study, const std::string &id = "");
    bool ping();
    JsonValue studies();
    JsonValue metrics();
    /** Ask the daemon to drain and exit; returns its acknowledgement. */
    JsonValue shutdown();

  private:
    int fd_ = -1;
    std::unique_ptr<LineReader> reader_;
};

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_CLIENT_HH
