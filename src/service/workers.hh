/**
 * @file
 * Multi-worker dispatch for the evaluation daemon's front process.
 *
 * When `nvmcache serve --workers N` forks N worker daemons, the front
 * process holds one WorkerFleet over their Unix sockets. A run
 * request's study is decomposed into independent sub-requests
 * (Study::shardRequests) and primeAll() spreads them across the
 * workers; each worker executes its share and persists every result
 * into the shared on-disk ResultStore. The front then runs the full
 * study locally against the warmed store — every run is a disk hit —
 * so the merged report is structurally byte-identical to
 * single-process output at any (workers, jobs, shards).
 *
 * Dispatch discipline:
 *  - one bounded FIFO per worker (queueCap); primeAll() blocks when a
 *    worker's queue is full instead of buffering unboundedly;
 *  - a failed dispatch (worker unreachable, connection dropped, or an
 *    admission-control rejection) resubmits the job to the next
 *    sibling; resubmission pushes unbounded so two full queues can
 *    never deadlock each other. A job is abandoned — counted as a
 *    permanent failure, the study still runs locally — only after
 *    every worker declined it;
 *  - lazy connections: a worker's socket is dialed on first use and
 *    redialed (with retry) after any failure, so workers may come up
 *    after the fleet.
 *
 * Per-worker dispatch/completion/failure/resubmission counters flow
 * through the MetricsRegistry under "service.worker.*", and every
 * remote execution is bracketed by a "service.worker.run" trace span.
 */

#ifndef NVMCACHE_SERVICE_WORKERS_HH
#define NVMCACHE_SERVICE_WORKERS_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/study_registry.hh"

namespace nvmcache {

class ServiceClient;

struct WorkerFleetConfig
{
    /** Worker daemon socket paths; one dispatch lane per entry. */
    std::vector<std::string> sockets;
    /** Bounded queue depth per worker (backpressure threshold). */
    std::size_t queueCap = 4;
    /** Dial attempts per connection, 100 ms apart, before the job
        fails over to a sibling. */
    unsigned connectRetries = 50;
};

class WorkerFleet
{
  public:
    explicit WorkerFleet(WorkerFleetConfig cfg);
    ~WorkerFleet();

    WorkerFleet(const WorkerFleet &) = delete;
    WorkerFleet &operator=(const WorkerFleet &) = delete;

    /**
     * Dispatch @p requests across the fleet and block until every one
     * has completed on some worker or been declined by all of them.
     * Duplicate requests (by canonicalKey) are dispatched once.
     * Returns the number of permanent failures — callers treat the
     * primed store as best-effort, so a nonzero count degrades to
     * local simulation, never to a wrong result. Serialized: a
     * concurrent primeAll() waits its turn.
     */
    std::size_t primeAll(const std::vector<StudyRequest> &requests);

    std::size_t size() const { return lanes_.size(); }

  private:
    struct Job
    {
        StudyRequest request;
        unsigned attempts = 0; ///< workers that have declined it
    };

    struct Lane
    {
        std::size_t index = 0;
        std::string socket;
        std::mutex mu;
        std::condition_variable cv; ///< queue not-full / not-empty
        std::deque<Job> queue;      ///< guarded by mu
        std::unique_ptr<ServiceClient> client; ///< dispatcher-owned
        std::thread dispatcher;
    };

    void dispatchLoop(Lane &lane);
    /** Run one job on @p lane's worker; false = decline (failover). */
    bool runOn(Lane &lane, const Job &job);
    void push(Lane &lane, Job job, bool bounded);
    void jobDone(bool failed);

    WorkerFleetConfig cfg_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    /** Atomic: the destructor sets it holding one lane's mu at a
        time, while another lane's cv predicate may read it under its
        own mu — there is no common lock. Wakeups are still correct:
        the store happens before the notify under each lane's mu. */
    std::atomic<bool> stopping_{false};

    std::mutex batchMu_; ///< serializes primeAll callers

    std::mutex doneMu_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0;  ///< jobs enqueued, not yet settled
    std::size_t failures_ = 0; ///< permanent failures this batch
};

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_WORKERS_HH
