/**
 * @file
 * Multi-worker dispatch and supervision for the evaluation daemon's
 * front process.
 *
 * When `nvmcache serve --workers N` spawns N worker daemons, the front
 * process holds one WorkerFleet over their Unix sockets. A run
 * request's study is decomposed into independent sub-requests
 * (Study::shardRequests) and primeAll() spreads them across the
 * workers; each worker executes its share and persists every result
 * into the shared on-disk ResultStore. The front then runs the full
 * study locally against the warmed store — every run is a disk hit —
 * so the merged report is structurally byte-identical to
 * single-process output at any (workers, jobs, shards).
 *
 * Dispatch discipline:
 *  - one bounded FIFO per worker (queueCap); primeAll() blocks when a
 *    worker's queue is full instead of buffering unboundedly;
 *  - a failed dispatch (worker unreachable, connection dropped, a
 *    jobTimeoutMs deadline miss, or an admission-control rejection)
 *    resubmits the job to the next sibling; resubmission pushes
 *    unbounded so two full queues can never deadlock each other. A
 *    job is abandoned — counted as a permanent failure, the study
 *    still runs locally — only after every worker declined it;
 *  - lazy connections: a worker's socket is dialed on first use and
 *    redialed (with retry) after any failure, so workers may come up
 *    after the fleet;
 *  - lane health: the supervisor marks a lane unhealthy while its
 *    worker is down or quarantined. primeAll() assigns blocks only
 *    over healthy lanes, and a dispatcher holding jobs for a lane
 *    that just went unhealthy declines them without dialing, so the
 *    dead worker's queue share redistributes to its siblings.
 *
 * WorkerSupervisor owns the worker *processes*. It spawns each one by
 * fork + exec of a caller-supplied command line (re-invoking the CLI
 * binary — safe to do after the front is multithreaded, unlike a bare
 * fork), then watches them on a supervision thread:
 *  - exits are reaped with waitpid(WNOHANG) every interval;
 *  - liveness is probed with a ping over a fresh connection under a
 *    receive timeout, which catches the SIGSTOP case a pure connect
 *    test misses (a stopped daemon's kernel still accepts);
 *  - a worker that misses missedLimit consecutive heartbeats is
 *    SIGKILLed and treated as dead;
 *  - dead workers respawn with exponential backoff between
 *    consecutive quick crashes; quarantineRestarts restarts inside
 *    quarantineWindowMs trip the circuit breaker — the worker is
 *    quarantined (no further respawns) and its fleet lane is marked
 *    permanently unhealthy.
 *
 * Restarts count under "service.worker.restarts", quarantined lanes
 * under the "service.worker.quarantined" gauge; every spawn and death
 * is trace-marked. Per-worker dispatch/completion/failure counters
 * flow through the MetricsRegistry under "service.worker.*", and
 * every remote execution is bracketed by a "service.worker.run" span.
 */

#ifndef NVMCACHE_SERVICE_WORKERS_HH
#define NVMCACHE_SERVICE_WORKERS_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <thread>
#include <vector>

#include "core/study_registry.hh"

namespace nvmcache {

class ServiceClient;

struct WorkerFleetConfig
{
    /** Worker daemon socket paths; one dispatch lane per entry. */
    std::vector<std::string> sockets;
    /** Bounded queue depth per worker (backpressure threshold). */
    std::size_t queueCap = 4;
    /** Dial attempts per connection, 100 ms apart, before the job
        fails over to a sibling. */
    unsigned connectRetries = 50;
    /** Per-job response deadline on the worker connection; a worker
        that misses it has the job abandoned and resubmitted to a
        sibling. < 0 waits forever (legacy behavior). */
    int jobTimeoutMs = -1;
};

class WorkerFleet
{
  public:
    explicit WorkerFleet(WorkerFleetConfig cfg);
    ~WorkerFleet();

    WorkerFleet(const WorkerFleet &) = delete;
    WorkerFleet &operator=(const WorkerFleet &) = delete;

    /**
     * Dispatch @p requests across the fleet and block until every one
     * has completed on some worker or been declined by all of them.
     * Duplicate requests (by canonicalKey) are dispatched once.
     * Returns the number of permanent failures — callers treat the
     * primed store as best-effort, so a nonzero count degrades to
     * local simulation, never to a wrong result. Serialized: a
     * concurrent primeAll() waits its turn.
     */
    std::size_t primeAll(const std::vector<StudyRequest> &requests);

    /**
     * Mark worker @p index up (true) or down/quarantined (false).
     * Unhealthy lanes get no fresh block assignments and decline the
     * jobs already queued on them (failover redistributes the share).
     * Thread-safe; typically driven by a WorkerSupervisor.
     */
    void setWorkerHealthy(std::size_t index, bool healthy);

    /** Lanes currently marked healthy. */
    std::size_t healthyCount() const;

    std::size_t size() const { return lanes_.size(); }

  private:
    struct Job
    {
        StudyRequest request;
        unsigned attempts = 0; ///< workers that have declined it
    };

    struct Lane
    {
        std::size_t index = 0;
        std::string socket;
        std::atomic<bool> healthy{true};
        std::mutex mu;
        std::condition_variable cv; ///< queue not-full / not-empty
        std::deque<Job> queue;      ///< guarded by mu
        std::unique_ptr<ServiceClient> client; ///< dispatcher-owned
        std::thread dispatcher;
    };

    void dispatchLoop(Lane &lane);
    /** Run one job on @p lane's worker; false = decline (failover). */
    bool runOn(Lane &lane, const Job &job);
    void push(Lane &lane, Job job, bool bounded);
    void jobDone(bool failed);

    WorkerFleetConfig cfg_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    /** Atomic: the destructor sets it holding one lane's mu at a
        time, while another lane's cv predicate may read it under its
        own mu — there is no common lock. Wakeups are still correct:
        the store happens before the notify under each lane's mu. */
    std::atomic<bool> stopping_{false};

    std::mutex batchMu_; ///< serializes primeAll callers

    std::mutex doneMu_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0;  ///< jobs enqueued, not yet settled
    std::size_t failures_ = 0; ///< permanent failures this batch
};

// --- process supervision ----------------------------------------------

struct WorkerSupervisorConfig
{
    /** One worker per socket; index i serves sockets[i]. */
    std::vector<std::string> sockets;
    /**
     * argv of worker @p index — typically the CLI binary re-invoked
     * as `serve --socket <sockets[index]> ...`. Spawning is fork +
     * exec (never bare fork), so it is safe once the front daemon is
     * multithreaded. Must be nonempty.
     */
    std::function<std::vector<std::string>(std::size_t index)> command;
    /** Supervision interval: exits reaped and heartbeats probed this
        often; also the heartbeat receive timeout. */
    unsigned heartbeatMs = 500;
    /** Consecutive missed heartbeats before SIGKILL + respawn. */
    unsigned missedLimit = 3;
    /** Respawn backoff after the 2nd+ consecutive quick crash:
        min(base << (n - 2), max). The first respawn is immediate, so
        a one-off death restores capacity within one interval. */
    unsigned backoffBaseMs = 100;
    unsigned backoffMaxMs = 5000;
    /** Circuit breaker: this many restarts within quarantineWindowMs
        quarantines the worker (no further respawns). 0 disables. */
    unsigned quarantineRestarts = 5;
    unsigned quarantineWindowMs = 10000;
};

class WorkerSupervisor
{
  public:
    explicit WorkerSupervisor(WorkerSupervisorConfig cfg);
    ~WorkerSupervisor();

    WorkerSupervisor(const WorkerSupervisor &) = delete;
    WorkerSupervisor &operator=(const WorkerSupervisor &) = delete;

    /** Spawn every worker and start the supervision thread. */
    void start();

    /** SIGTERM all workers, reap them, stop supervising. Idempotent;
        the destructor calls it. */
    void stop();

    /**
     * Health callback, fired off the supervision thread: (index,
     * false) when a worker is detected dead or quarantined, (index,
     * true) once its replacement is running. Wire it to
     * WorkerFleet::setWorkerHealthy. Set before start().
     */
    void setHealthSink(std::function<void(std::size_t, bool)> sink);

    /** Workers currently running (spawned and not known-dead). */
    std::size_t aliveWorkers() const;

    /** Workers tripped into quarantine. */
    std::size_t quarantinedWorkers() const;

    /** Restarts performed since start(). */
    std::size_t restarts() const;

    /** Every worker alive and none quarantined. */
    bool atFullCapacity() const;

    /**
     * Chaos hook: send @p sig to the (pick mod alive)-th live worker.
     * False when no worker is alive to target.
     */
    bool signalWorker(std::uint64_t pick, int sig);

    std::size_t size() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::size_t index = 0;
        std::string socket;
        pid_t pid = -1;
        bool alive = false;
        bool quarantined = false;
        unsigned missedHeartbeats = 0;
        /** Quick-crash streak driving the respawn backoff. */
        unsigned consecutiveCrashes = 0;
        std::chrono::steady_clock::time_point spawnedAt;
        std::chrono::steady_clock::time_point respawnNotBefore;
        /** Restart times inside the rolling quarantine window. */
        std::deque<std::chrono::steady_clock::time_point> restartTimes;
    };

    void superviseLoop();
    /** One supervision pass: reap, probe, kill hung, respawn dead. */
    void superviseOnce();
    void spawn(Slot &slot);
    void onDeath(Slot &slot, const char *cause);
    bool pingWorker(const std::string &socket) const;
    void notifyHealth(std::size_t index, bool healthy);

    WorkerSupervisorConfig cfg_;
    std::function<void(std::size_t, bool)> healthSink_;
    std::vector<Slot> slots_; ///< guarded by mu_
    std::size_t restarts_ = 0;

    mutable std::mutex mu_;
    std::condition_variable cv_; ///< wakes the supervisor on stop
    bool stopping_ = false;
    bool started_ = false;
    std::thread thread_;
};

} // namespace nvmcache

#endif // NVMCACHE_SERVICE_WORKERS_HH
