/**
 * @file
 * Regenerates paper Table III: the Gainestown LLC models for all ten
 * NVMs plus the SRAM baseline, in both configurations —
 * fixed-capacity (2 MB each) and fixed-area (6.55 mm^2 budget).
 *
 * Two renditions are printed:
 *  1. the published NVSim numbers shipped with this library (used by
 *     the system-level experiments), and
 *  2. the output of our from-scratch circuit estimator, including the
 *     fixed-area capacity solve, so the two can be compared
 *     row by row.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "nvm/model_library.hh"
#include "nvsim/area_solver.hh"
#include "nvsim/estimator.hh"
#include "nvsim/published.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace nvmcache;

namespace {

void
printLlcTable(const std::vector<LlcModel> &models,
              const std::string &title, bool color, bool csv)
{
    Table table(title);
    std::vector<std::string> header{"metric"};
    for (const LlcModel &m : models)
        header.push_back(m.citationName());
    table.setHeader(header);
    table.setHeatmap(Table::Heatmap::PerRow);
    table.setColor(color);

    table.startRow("Capacity [MB]");
    for (const LlcModel &m : models)
        table.addCell(toMB(m.capacityBytes), 0);
    table.startRow("Area [mm^2]");
    for (const LlcModel &m : models)
        table.addCell(toMm2(m.area), 3);
    table.startRow("Tag Access Latency [ns]");
    for (const LlcModel &m : models)
        table.addCell(toNs(m.tagLatency), 3);
    table.startRow("Data Read Latency [ns]");
    for (const LlcModel &m : models)
        table.addCell(toNs(m.readLatency), 3);
    table.startRow("Data Write Latency set/reset [ns]");
    for (const LlcModel &m : models) {
        char buf[64];
        if (m.writeLatencySet != m.writeLatencyReset)
            std::snprintf(buf, sizeof(buf), "%.3f/%.3f",
                          toNs(m.writeLatencySet),
                          toNs(m.writeLatencyReset));
        else
            std::snprintf(buf, sizeof(buf), "%.3f",
                          toNs(m.writeLatencySet));
        table.addCell(buf, toNs(m.writeLatency()));
    }
    table.startRow("Cache Hit Dynamic Energy [nJ]");
    for (const LlcModel &m : models)
        table.addCell(toNJ(m.eHit), 3);
    table.startRow("Cache Miss Dynamic Energy [nJ]");
    for (const LlcModel &m : models)
        table.addCell(toNJ(m.eMiss), 3);
    table.startRow("Cache Write Dynamic Energy [nJ]");
    for (const LlcModel &m : models)
        table.addCell(toNJ(m.eWrite), 3);
    table.startRow("Cache Total Leakage Power [W]");
    for (const LlcModel &m : models)
        table.addCell(m.leakage, 3);

    if (csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Table III: Gainestown LLC models (NVSim outputs)");

    printLlcTable(publishedLlcModels(CapacityMode::FixedCapacity),
                  "Published, fixed-capacity (2 MB LLCs)", opts.color,
                  opts.csv);
    printLlcTable(publishedLlcModels(CapacityMode::FixedArea),
                  "Published, fixed-area (6.55 mm^2 budget)",
                  opts.color, opts.csv);

    bench::banner(
        "From-scratch circuit estimator (this library's NVSim)");

    Estimator estimator;
    CacheOrgConfig org; // 2 MB, 16-way, 64 B

    std::vector<LlcModel> est_cap;
    for (const LlcModel &pub :
         publishedLlcModels(CapacityMode::FixedCapacity)) {
        const CellSpec &cell = pub.klass == NvmClass::SRAM
                                   ? sramBaselineCell()
                                   : publishedCell(pub.name);
        est_cap.push_back(estimator.estimate(cell, org));
    }
    printLlcTable(est_cap, "Estimated, fixed-capacity (2 MB LLCs)",
                  opts.color, opts.csv);

    // Fixed-area: solve each technology's capacity for the SRAM
    // baseline's area, then estimate at that capacity.
    const double budget = est_cap.back().area; // our SRAM area
    std::printf("fixed-area budget: our SRAM 2 MB estimate = "
                "%.3f mm^2 (paper: 6.548)\n\n",
                toMm2(budget));
    AreaSolver solver{estimator};
    std::vector<LlcModel> est_area;
    for (const LlcModel &pub :
         publishedLlcModels(CapacityMode::FixedArea)) {
        const CellSpec &cell = pub.klass == NvmClass::SRAM
                                   ? sramBaselineCell()
                                   : publishedCell(pub.name);
        AreaSolveResult solved = solver.solve(cell, budget, org);
        est_area.push_back(solved.model);
    }
    printLlcTable(est_area,
                  "Estimated, fixed-area (solver-chosen capacities)",
                  opts.color, opts.csv);

    std::printf("Note: the estimator is validated by rank agreement "
                "with the published table\n(tests/test_nvsim.cc); the "
                "system experiments always use the published rows.\n");
    opts.writeStats();
    return 0;
}
