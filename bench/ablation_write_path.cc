/**
 * @file
 * Ablation of the paper's §V-A-7 caveat: "LLC writes happen off the
 * critical path... Without this, exceptionally high write latency
 * could more significantly impact system execution time."
 *
 * We rerun a representative workload slice under three LLC write
 * policies — Posted (the paper's assumption), BankContention (writes
 * occupy banks; requesters stall past the queue depth), and Blocking
 * (writes fully on the critical path) — and report speedup vs the
 * SRAM baseline under the same policy. The slow-write technologies
 * (Kang_P 301 ns, Zhang_R 301/305 ns) collapse exactly as the paper
 * predicts once writes leave the posted path.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "util/table.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Ablation: LLC write-path policy (SV-A-7)");

    const std::vector<std::string> workloads{"bzip2", "GemsFDTD",
                                             "deepsjeng", "ft"};
    const std::vector<std::string> techs{"Kang", "Close", "Chung",
                                         "Xue", "Zhang"};
    struct PolicyCase
    {
        WritePolicy policy;
        const char *name;
    } policies[] = {
        {WritePolicy::Posted, "posted (paper)"},
        {WritePolicy::BankContention, "bank-contention"},
        {WritePolicy::Blocking, "blocking"},
    };

    for (const std::string &w : workloads) {
        Table table("speedup vs SRAM, workload " + w);
        std::vector<std::string> header{"tech"};
        for (const auto &p : policies)
            header.push_back(p.name);
        table.setHeader(header);
        table.setHeatmap(Table::Heatmap::PerRow);
        table.setColor(opts.color);

        BenchmarkSpec spec = benchmark(w);
        if (opts.quick)
            spec.gen.totalAccesses /= 4;

        // One sweep per policy (the SRAM baseline reruns under the
        // same policy so the comparison isolates the NVM asymmetry).
        std::vector<TechSweep> sweeps;
        for (const auto &p : policies) {
            SystemConfig cfg;
            cfg.llc.writePolicy = p.policy;
            ExperimentRunner runner(cfg);
            sweeps.push_back(runner.sweepTechs(
                spec, CapacityMode::FixedCapacity));
        }

        for (const std::string &t : techs) {
            table.startRow(t + "_" +
                           classSubscript(
                               publishedLlcModel(
                                   t, CapacityMode::FixedCapacity)
                                   .klass));
            for (const TechSweep &sweep : sweeps)
                table.addCell(sweep.byTech(t).speedup, 3);
        }
        if (opts.csv)
            std::cout << table.toCsv();
        else
            table.print(std::cout);
        std::cout << "\n";
    }
    opts.writeStats();
    return 0;
}
