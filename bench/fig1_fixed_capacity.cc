/**
 * @file
 * Regenerates paper Figure 1: speedup, LLC energy, and ED^2P of every
 * NVM-based LLC versus the SRAM baseline under the *fixed-capacity*
 * strategy (all LLCs 2 MB), for the single-threaded (1a) and
 * multi-threaded (1b) workloads. Also prints the simulated
 * architecture (Table IV) as a header.
 */

#include <cstdio>

#include "bench/fig_common.hh"

using namespace nvmcache;
using namespace nvmcache::bench;

namespace {

void
printArchitecture(const SystemConfig &cfg)
{
    std::printf("Simulated architecture (Table IV):\n");
    std::printf("  uProcessor : Xeon x5550 'Gainestown' %.2f GHz OoO, "
                "quad-core, 1 thread/core\n",
                cfg.frequency / 1e9);
    std::printf("  L1I        : private, %llu KB, %u-way, write-back\n",
                (unsigned long long)cfg.core.l1i.capacityBytes / 1024,
                cfg.core.l1i.associativity);
    std::printf("  L1D        : private, %llu KB, %u-way, write-back\n",
                (unsigned long long)cfg.core.l1d.capacityBytes / 1024,
                cfg.core.l1d.associativity);
    std::printf("  L2         : private, %llu KB, %u-way, write-back\n",
                (unsigned long long)cfg.core.l2.capacityBytes / 1024,
                cfg.core.l2.associativity);
    std::printf("  L3 (LLC)   : shared, 2 MB, 64 B blocks, %u-way, "
                "%u banks\n",
                cfg.llc.associativity, cfg.llc.numBanks);
    std::printf("  DRAM       : %u controllers, %.1f GB/s each\n\n",
                cfg.dram.numControllers,
                cfg.dram.bandwidthPerController / 1e9);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = HarnessOptions::parse(argc, argv);
    ExperimentRunner runner;
    runner.setJobs(opts.jobs);
    runner.setShards(opts.shards);

    banner("Figure 1: Gainestown with fixed-capacity LLC");
    printArchitecture(runner.baseConfig());

    FigureStudy study =
        runFigureStudy(CapacityMode::FixedCapacity, runner,
                       opts.quick ? 0.25 : 1.0);
    printFigure(study, "Fig 1", opts);
    opts.writeStats(aggregateSimStats(study));
    return 0;
}
