/**
 * @file
 * Regenerates paper Table II: the ten NVM cell models with the
 * provenance of every parameter ("+" = derived via heuristic 1
 * (electrical identities), "*" = heuristics 2/3 (interpolation /
 * similarity)). It then demonstrates the paper's first contribution:
 * feeding only the *reported* parameters through the heuristic engine
 * re-derives the released models, and the harness prints each
 * re-derived value next to the published one.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace nvmcache;

namespace {

struct FieldRow
{
    CellField field;
    const char *label;
    double scale; ///< canonical -> display
    int precision;
};

const FieldRow kRows[] = {
    {CellField::ProcessNode, "process [nm]", 1e9, 0},
    {CellField::CellSizeF2, "cell size [F^2]", 1.0, 1},
    {CellField::CellLevels, "cell levels", 1.0, 0},
    {CellField::ReadCurrent, "read current [uA]", 1e6, 1},
    {CellField::ReadVoltage, "read voltage [V]", 1.0, 2},
    {CellField::ReadPower, "read power [uW]", 1e6, 2},
    {CellField::ReadEnergy, "read energy [pJ]", 1e12, 1},
    {CellField::ResetCurrent, "reset current [uA]", 1e6, 0},
    {CellField::ResetVoltage, "reset voltage [V]", 1.0, 1},
    {CellField::ResetPulse, "reset pulse [ns]", 1e9, 1},
    {CellField::ResetEnergy, "reset energy [pJ]", 1e12, 2},
    {CellField::SetCurrent, "set current [uA]", 1e6, 0},
    {CellField::SetVoltage, "set voltage [V]", 1.0, 1},
    {CellField::SetPulse, "set pulse [ns]", 1e9, 1},
    {CellField::SetEnergy, "set energy [pJ]", 1e12, 2},
};

std::string
fmtParam(const CellParam &p, double scale, int precision)
{
    if (!p.known())
        return "";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", precision,
                  p.get() * scale, provenanceMark(p.prov).c_str());
    return buf;
}

void
printModelTable(const std::vector<CellSpec> &cells,
                const std::string &title, bool color)
{
    Table table(title);
    std::vector<std::string> header{"parameter"};
    for (const CellSpec &c : cells)
        header.push_back(c.name);
    table.setHeader(header);
    table.setColor(color);

    table.startRow("class");
    for (const CellSpec &c : cells)
        table.addCell(toString(c.klass));
    table.startRow("year");
    for (const CellSpec &c : cells)
        table.addCell(std::to_string(c.year));
    table.startRow("access device");
    for (const CellSpec &c : cells)
        table.addCell(c.accessDevice);

    for (const FieldRow &row : kRows) {
        table.startRow(row.label);
        for (const CellSpec &c : cells) {
            if (!fieldApplicable(c.klass, row.field)) {
                table.addBlank();
                continue;
            }
            table.addCell(
                fmtParam(c.field(row.field), row.scale, row.precision));
        }
    }
    table.print(std::cout);
    std::cout << "('+' = heuristic 1 (electrical identities), "
                 "'*' = heuristics 2/3)\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Table II: NVM cell-level models");

    printModelTable(publishedCells(), "Released models (paper values)",
                    opts.color);

    // --- contribution 1 in action ----------------------------------
    bench::banner(
        "Heuristic completion: reported-only specs -> full models");

    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    HeuristicEngine engine(refs);

    std::vector<CellSpec> completed;
    std::size_t steps = 0;
    for (const CellSpec &raw : rawCells()) {
        CompletionResult result = engine.complete(raw);
        steps += result.steps.size();
        completed.push_back(result.spec);
        std::printf("%-9s: %zu gaps filled, %s\n", raw.name.c_str(),
                    result.steps.size(),
                    result.complete() ? "simulator-ready"
                                      : "STILL INCOMPLETE");
        for (const CompletionStep &step : result.steps)
            std::printf("    %-18s <- %-3s %s\n",
                        toString(step.field).c_str(),
                        step.method == Provenance::H1Electrical ? "H1"
                        : step.method == Provenance::H2Interpolated
                            ? "H2"
                            : "H3",
                        step.rationale.c_str());
    }
    std::printf("\ntotal: %zu parameters re-derived across 10 cells\n\n",
                steps);

    printModelTable(completed,
                    "Engine-completed models (compare against above)",
                    opts.color);

    // Residual error of re-derived vs published, per cell.
    std::printf("Re-derivation residuals vs released models:\n");
    for (std::size_t i = 0; i < completed.size(); ++i) {
        const CellSpec &pub = publishedCells()[i];
        const CellSpec &mine = completed[i];
        double worst = 0.0;
        const char *worst_field = "-";
        for (const FieldRow &row : kRows) {
            const CellParam &p = pub.field(row.field);
            const CellParam &q = mine.field(row.field);
            if (!p.known() || !q.known() ||
                p.prov == Provenance::Reported)
                continue;
            double rel = std::abs(q.get() - p.get()) /
                         std::max(std::abs(p.get()), 1e-30);
            if (rel > worst) {
                worst = rel;
                worst_field = row.label;
            }
        }
        std::printf("  %-9s worst relative error %6.1f%%  (%s)\n",
                    pub.name.c_str(), worst * 100.0, worst_field);
    }
    opts.writeStats();
    return 0;
}
