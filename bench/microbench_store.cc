/**
 * @file
 * google-benchmark microbenchmarks of the persistent result store:
 * codec round-trip cost, record put/load cost, and the headline
 * warm-restart figure — a full tech sweep replayed entirely from
 * disk by a fresh runner, the path a daemon restart or a second
 * process takes. The store.* / runner.store.* counters are exported
 * as benchmark counters so regressions in the disk tier are visible
 * in the uploaded results.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/experiment.hh"
#include "store/codec.hh"
#include "store/result_store.hh"
#include "util/metrics.hh"
#include "workload/generators.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

GeneratorConfig
microConfig(std::uint64_t accesses)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = accesses;
    StreamConfig hot;
    hot.kind = StreamConfig::Kind::Zipf;
    hot.regionBytes = 1 << 20;
    hot.zipfSkew = 0.9;
    hot.weight = 0.8;
    StreamConfig cold;
    cold.kind = StreamConfig::Kind::Uniform;
    cold.regionBytes = 16 << 20;
    cold.weight = 0.2;
    cfg.loads.streams = {hot, cold};
    cfg.stores.streams = {hot, cold};
    return cfg;
}

BenchmarkSpec
microSpec(std::uint64_t accesses)
{
    BenchmarkSpec spec;
    spec.name = "microzipf";
    spec.gen = microConfig(accesses);
    spec.defaultThreads = 1;
    return spec;
}

/** Fresh mkdtemp directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/nvmstore-bench.XXXXXX";
        path = ::mkdtemp(tmpl);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

} // namespace

static void
BM_SimStatsCodec(benchmark::State &state)
{
    // Encode+decode cost of one run record, measured on real stats
    // (including the full detail snapshot) from a small simulation.
    ExperimentRunner runner;
    runner.setJobs(1);
    const SimStats stats =
        runner.runOne(microSpec(std::uint64_t(state.range(0))),
                      publishedLlcModel("Chung",
                                        CapacityMode::FixedCapacity));
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const std::string payload = encodeSimStats(stats);
        bytes = payload.size();
        benchmark::DoNotOptimize(decodeSimStats(payload));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["recordBytes"] = double(bytes);
}
BENCHMARK(BM_SimStatsCodec)->Arg(50'000);

static void
BM_StoreRoundTrip(benchmark::State &state)
{
    // put() + load() of one encoded run record through the on-disk
    // store: the per-record overhead a disk-warm study pays.
    TempDir dir;
    ResultStore store(dir.path);
    ExperimentRunner runner;
    runner.setJobs(1);
    const std::string payload = encodeSimStats(
        runner.runOne(microSpec(std::uint64_t(state.range(0))),
                      publishedLlcModel(
                          "Chung", CapacityMode::FixedCapacity)));
    std::uint64_t key = 0;
    for (auto _ : state) {
        const std::string k = "bench/" + std::to_string(key++);
        store.put("run", k, payload);
        benchmark::DoNotOptimize(store.load("run", k));
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["recordBytes"] = double(payload.size());
}
BENCHMARK(BM_StoreRoundTrip)->Arg(50'000);

static void
BM_StoreWarmStart(benchmark::State &state)
{
    // The headline: a full 11-model tech sweep by a *fresh* runner
    // against a warm store — every run, trace, and private trace a
    // disk hit. This is what a daemon restart or a sibling worker
    // process pays instead of simulating.
    TempDir dir;
    ResultStore::setGlobal(dir.path);
    const BenchmarkSpec spec =
        microSpec(std::uint64_t(state.range(0)));
    {
        ExperimentRunner cold;
        cold.setJobs(1);
        benchmark::DoNotOptimize(
            cold.sweepTechs(spec, CapacityMode::FixedCapacity));
    }
    MetricsRegistry &reg = MetricsRegistry::global();
    const std::uint64_t hits0 = reg.counter("store.hits").get();
    std::uint64_t diskHits = 0;
    for (auto _ : state) {
        ExperimentRunner warm;
        warm.setJobs(1);
        TechSweep sweep =
            warm.sweepTechs(spec, CapacityMode::FixedCapacity);
        benchmark::DoNotOptimize(sweep);
        diskHits = warm.runnerStats().diskHits;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["diskHitsPerSweep"] = double(diskHits);
    state.counters["storeHits"] =
        double(reg.counter("store.hits").get() - hits0);
    // Leave the process store-free for any benchmark registered after
    // this one (the TempDir is about to disappear).
    ResultStore::setGlobal("");
    state.SetLabel("fresh runner, warm disk store");
}
BENCHMARK(BM_StoreWarmStart)->Arg(50'000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
