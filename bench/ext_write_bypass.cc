/**
 * @file
 * Extension bench: NVM write-bypass (the paper's related-work
 * category 2 — cache bypassing, refs [14][16][17][21]).
 *
 * For the write-expensive technologies, a writeback that misses in
 * the LLC can be forwarded to DRAM instead of being installed,
 * avoiding an NVM array write at the risk of a later demand miss.
 * This bench quantifies the trade per workload and technology:
 * normalized LLC energy and speedup with and without bypass, plus the
 * bypass rate and the projected PCRAM lifetime gain.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "nvm/endurance.hh"
#include "util/table.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Extension: LLC write-bypass for NVM writebacks");

    const std::vector<std::string> workloads{"bzip2", "GemsFDTD",
                                             "deepsjeng", "lu", "ft"};
    const std::vector<std::string> techs{"Oh", "Kang", "Zhang"};

    ExperimentRunner plain;
    SystemConfig bypass_cfg;
    bypass_cfg.llc.bypassWritebackMiss = true;
    ExperimentRunner bypassing(bypass_cfg);

    Table table("write-bypass effect (fixed-capacity)");
    table.setHeader({"workload.tech", "energy", "energy+bypass",
                     "speedup", "speedup+bypass", "bypass rate %",
                     "lifetime gain x"});
    table.setColor(opts.color);

    for (const std::string &w : workloads) {
        BenchmarkSpec spec = benchmark(w);
        if (opts.quick)
            spec.gen.totalAccesses /= 4;
        TechSweep base =
            plain.sweepTechs(spec, CapacityMode::FixedCapacity);
        TechSweep byp =
            bypassing.sweepTechs(spec, CapacityMode::FixedCapacity);

        for (const std::string &t : techs) {
            const RunResult &b = base.byTech(t);
            const RunResult &y = byp.byTech(t);
            const double rate =
                y.stats.llc.writebacksIn
                    ? 100.0 * double(y.stats.llc.writeBypasses) /
                          double(y.stats.llc.writebacksIn)
                    : 0.0;
            // Lifetime scales inversely with array-write rate.
            const double base_writes = double(
                b.stats.llc.fills + b.stats.llc.writebacksIn -
                b.stats.llc.writeBypasses);
            const double byp_writes = double(
                y.stats.llc.fills + y.stats.llc.writebacksIn -
                y.stats.llc.writeBypasses);
            const double gain =
                byp_writes > 0.0
                    ? (base_writes / b.stats.seconds) /
                          (byp_writes / y.stats.seconds)
                    : 0.0;

            table.startRow(w + "." + t);
            table.addCell(b.normEnergy, 3);
            table.addCell(y.normEnergy, 3);
            table.addCell(b.speedup, 3);
            table.addCell(y.speedup, 3);
            table.addCell(rate, 1);
            table.addCell(gain, 2);
        }
    }

    if (opts.csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);
    std::printf("\nOn the Table V suite most writebacks re-hit the "
                "LLC (their lines were installed\nby the preceding "
                "demand fill), so bypass rates stay low. The case "
                "bypassing is\nbuilt for is dirty private working "
                "sets outliving their LLC copies:\n\n");

    // Stress scenario: per-core hot store sets living in the private
    // L2s while four cores' streaming loads churn the shared LLC.
    GeneratorConfig stress;
    stress.totalAccesses = opts.quick ? 500'000 : 2'000'000;
    stress.loadFraction = 0.7;
    stress.storeFraction = 0.3;
    StreamConfig streaming;
    streaming.kind = StreamConfig::Kind::Sequential;
    streaming.regionBytes = 8ull << 20;
    streaming.stride = 8;
    stress.loads.streams = {streaming};
    StreamConfig hot_stores;
    hot_stores.kind = StreamConfig::Kind::Zipf;
    hot_stores.regionBytes = 256ull << 10;
    hot_stores.zipfSkew = 0.8;
    stress.stores.streams = {hot_stores};
    stress.seed = 4242;

    Table stress_table("producer-consumer stress (4 cores)");
    stress_table.setHeader({"tech", "energy [mJ]", "energy+bypass",
                            "bypass rate %", "array writes/s gain"});
    stress_table.setColor(opts.color);
    for (const std::string &t : techs) {
        auto run = [&](bool bypass) {
            SystemConfig sys;
            sys.numCores = 4;
            sys.llc.bypassWritebackMiss = bypass;
            System system(sys,
                          publishedLlcModel(
                              t, CapacityMode::FixedCapacity));
            auto traces = buildThreadTraces(stress, 4);
            std::vector<TraceSource *> ptrs;
            for (auto &tr : traces)
                ptrs.push_back(tr.get());
            return system.run(ptrs);
        };
        SimStats base = run(false);
        SimStats byp = run(true);
        const double rate =
            100.0 * double(byp.llc.writeBypasses) /
            double(std::max<std::uint64_t>(1,
                                           byp.llc.writebacksIn));
        const double base_w =
            double(base.llc.fills + base.llc.writebacksIn) /
            base.seconds;
        const double byp_w = double(byp.llc.fills +
                                    byp.llc.writebacksIn -
                                    byp.llc.writeBypasses) /
                             byp.seconds;
        stress_table.startRow(t);
        stress_table.addCell(base.llcEnergy() * 1e3, 3);
        stress_table.addCell(byp.llcEnergy() * 1e3, 3);
        stress_table.addCell(rate, 1);
        stress_table.addCell(base_w / byp_w, 2);
    }
    if (opts.csv)
        std::cout << stress_table.toCsv();
    else
        stress_table.print(std::cout);
    std::printf("\nExpected: double-digit bypass rates here, with "
                "energy cuts proportional to each\ntechnology's "
                "write-energy share and matching array-write "
                "(lifetime) relief.\n");
    opts.writeStats();
    return 0;
}
