/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate
 * itself: cache access throughput, generator throughput, LLC
 * demand-path cost, characterizer cost, and a whole-system
 * accesses/second figure. These guard the "minutes-fast experiments"
 * property the reproduction depends on.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "core/experiment.hh"
#include "nvsim/published.hh"
#include "prism/metrics.hh"
#include "sim/cache.hh"
#include "sim/nvm_llc.hh"
#include "sim/system.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "workload/generators.hh"
#include "workload/recorded_trace.hh"
#include "workload/suite.hh"

using namespace nvmcache;

namespace {

GeneratorConfig
microConfig(std::uint64_t accesses)
{
    GeneratorConfig cfg;
    cfg.totalAccesses = accesses;
    StreamConfig hot;
    hot.kind = StreamConfig::Kind::Zipf;
    hot.regionBytes = 1 << 20;
    hot.zipfSkew = 0.9;
    hot.weight = 0.8;
    StreamConfig cold;
    cold.kind = StreamConfig::Kind::Uniform;
    cold.regionBytes = 16 << 20;
    cold.weight = 0.2;
    cfg.loads.streams = {hot, cold};
    cfg.stores.streams = {hot, cold};
    return cfg;
}

} // namespace

static void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache(CacheGeometry{std::uint64_t(state.range(0)),
                                      8, 64});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.below(64 << 20) & ~63ull, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(32 << 10)->Arg(256 << 10)->Arg(2 << 20);

static void
BM_ZipfDraw(benchmark::State &state)
{
    ZipfSampler zipf(std::uint64_t(state.range(0)), 0.9);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfDraw)->Arg(1 << 10)->Arg(1 << 20);

static void
BM_TraceGeneration(benchmark::State &state)
{
    SyntheticTrace trace(microConfig(1ull << 62), 0, 1);
    MemAccess a;
    for (auto _ : state) {
        trace.next(a);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

static void
BM_LlcDemandPath(benchmark::State &state)
{
    SharedLlc llc(publishedLlcModel("Chung",
                                    CapacityMode::FixedCapacity),
                  SharedLlc::Config{}, 2.66e9);
    Rng rng(3);
    std::uint64_t now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            llc.demandRead(rng.below(8 << 20) & ~63ull, now));
        now += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcDemandPath);

static void
BM_Characterize(benchmark::State &state)
{
    for (auto _ : state) {
        auto traces =
            buildThreadTraces(microConfig(std::uint64_t(
                                  state.range(0))),
                              1);
        std::vector<TraceSource *> ptrs{traces[0].get()};
        benchmark::DoNotOptimize(characterize(ptrs));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Characterize)->Arg(100'000)->Unit(benchmark::kMillisecond);

static void
BM_FullSystem(benchmark::State &state)
{
    const std::uint64_t accesses = std::uint64_t(state.range(0));
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.numCores = 4;
        System system(
            cfg, publishedLlcModel("Chung",
                                   CapacityMode::FixedCapacity));
        auto traces = buildThreadTraces(microConfig(accesses), 4);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        benchmark::DoNotOptimize(system.run(ptrs));
    }
    state.SetItemsProcessed(state.iterations() * accesses);
}
BENCHMARK(BM_FullSystem)->Arg(200'000)->Unit(benchmark::kMillisecond);

static void
BM_RecordTrace(benchmark::State &state)
{
    const std::uint64_t accesses = std::uint64_t(state.range(0));
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        auto trace = RecordedTrace::record(microConfig(accesses), 4);
        bytes = trace->packedBytes();
        benchmark::DoNotOptimize(trace);
    }
    state.SetItemsProcessed(state.iterations() * accesses);
    state.counters["packedBytesPerAccess"] =
        double(bytes) / double(accesses);
}
BENCHMARK(BM_RecordTrace)->Arg(200'000)->Unit(benchmark::kMillisecond);

static void
BM_DecodeTrace(benchmark::State &state)
{
    // Decode-only cost of a packed trace (no simulation attached):
    // the floor any replay scheduler pays.
    const std::uint64_t accesses = std::uint64_t(state.range(0));
    auto trace = RecordedTrace::record(microConfig(accesses), 1);
    TraceCursor cur = trace->cursor(0);
    std::array<MemAccess, 256> batch;
    for (auto _ : state) {
        std::size_t n;
        while ((n = cur.fill(batch)) != 0)
            benchmark::DoNotOptimize(batch[n - 1]);
        cur.reset();
    }
    state.SetItemsProcessed(state.iterations() * accesses);
}
BENCHMARK(BM_DecodeTrace)->Arg(200'000)->Unit(benchmark::kMillisecond);

static void
BM_ReplayTrace(benchmark::State &state)
{
    // Full LLC+DRAM replay of one recorded thread. arg1 selects the
    // scheduler: 0 = legacy per-access, 1 = batch kernel (serial),
    // 4 = batch kernel with 4 set shards. The recording is built
    // once; each iteration replays it through a fresh System.
    const std::uint64_t accesses = std::uint64_t(state.range(0));
    const unsigned mode = unsigned(state.range(1));
    SystemConfig cfg;
    cfg.numCores = 1;
    auto trace = RecordedTrace::record(microConfig(accesses), 1);
    auto cursors = trace->cursors();
    std::vector<BatchSource *> srcs{&cursors[0]};
    auto priv = PrivateTrace::record(srcs, cfg.core);
    cfg.batchReplay = mode != 0;
    cfg.shards = mode == 0 ? 1 : mode;
    const LlcModel model =
        publishedLlcModel("Chung", CapacityMode::FixedCapacity);
    for (auto _ : state) {
        cursors = trace->cursors();
        std::vector<ReplaySource *> ptrs{&cursors[0]};
        System system(cfg, model);
        benchmark::DoNotOptimize(
            system.runReplay(ptrs, priv.get()));
    }
    state.SetItemsProcessed(state.iterations() * accesses);
    MetricsRegistry &reg = MetricsRegistry::global();
    state.counters["replayAccessesPerSecond"] =
        reg.gauge("sim.replay.accessesPerSecond").get();
    state.counters["replayBlockFillRatio"] =
        reg.gauge("sim.replay.blockFillRatio").get();
}
BENCHMARK(BM_ReplayTrace)
    ->Args({200'000, 0})
    ->Args({200'000, 1})
    ->Args({200'000, 4})
    ->Unit(benchmark::kMillisecond);

static void
BM_TechSweep(benchmark::State &state)
{
    // End-to-end 11-model sweep of a Zipf-heavy workload through the
    // experiment engine: this is the figure-level cost the record-
    // once/replay-many stores exist to cut. A fresh runner per
    // iteration makes every iteration pay one trace record, one
    // private-level record, and eleven replays. arg1 = jobs, arg2 =
    // shards (0 = legacy per-access scheduler instead of the batch
    // kernel). Single-threaded recording, so replays go through the
    // batch kernel (multi-source runs fall back to the legacy
    // scheduler regardless of the knobs).
    const std::uint64_t accesses = std::uint64_t(state.range(0));
    const unsigned jobs = unsigned(state.range(1));
    const unsigned shards = unsigned(state.range(2));
    BenchmarkSpec spec;
    spec.name = "microzipf";
    spec.gen = microConfig(accesses);
    spec.defaultThreads = 1;
    for (auto _ : state) {
        ExperimentRunner runner;
        runner.setJobs(jobs);
        runner.setShards(shards == 0 ? 1 : shards);
        runner.setBatchReplay(shards != 0);
        TechSweep sweep =
            runner.sweepTechs(spec, CapacityMode::FixedCapacity);
        benchmark::DoNotOptimize(sweep);
        const RunnerStats rs = runner.runnerStats();
        state.counters["traceStoreHitRate"] =
            double(rs.traceHits) /
            double(rs.traceBuilds + rs.traceHits);
    }
    state.SetItemsProcessed(state.iterations() * accesses);
}
BENCHMARK(BM_TechSweep)
    ->Args({200'000, 1, 0})
    ->Args({200'000, 1, 1})
    ->Args({200'000, 1, 4})
    ->Args({200'000, 4, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
