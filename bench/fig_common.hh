/**
 * @file
 * Shared rendering for the Figure 1 / Figure 2 benches: each figure
 * is three stacked plots (speedup, LLC energy, ED^2P, all normalized
 * to the SRAM baseline) over workloads x technologies; we render each
 * plot as a table with workloads as rows and technologies as columns.
 */

#ifndef NVMCACHE_BENCH_FIG_COMMON_HH
#define NVMCACHE_BENCH_FIG_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/study.hh"
#include "util/table.hh"

namespace nvmcache::bench {

inline void
printMetricTable(const std::vector<TechSweep> &sweeps,
                 const std::string &title,
                 double (*metric)(const RunResult &), int precision,
                 const HarnessOptions &opts)
{
    if (sweeps.empty())
        return;
    Table table(title);
    std::vector<std::string> header{"workload"};
    for (const RunResult &r : sweeps.front().results)
        header.push_back(r.stats.llc.demandReads ? r.tech : r.tech);
    table.setHeader(header);
    table.setHeatmap(Table::Heatmap::PerRow);
    table.setColor(opts.color);

    for (const TechSweep &sweep : sweeps) {
        table.startRow(sweep.workload);
        for (const RunResult &r : sweep.results)
            table.addCell(metric(r), precision);
    }
    if (opts.csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);
    std::cout << "\n";
}

inline void
printFigure(const FigureStudy &study, const std::string &figName,
            const HarnessOptions &opts)
{
    auto speedup = [](const RunResult &r) { return r.speedup; };
    auto energy = [](const RunResult &r) { return r.normEnergy; };
    auto ed2p = [](const RunResult &r) { return r.normEd2p; };

    banner(figName + "a: single-threaded workloads (" +
           toString(study.mode) + ")");
    printMetricTable(study.singleThreaded,
                     "normalized speedup (T_sram / T_nvm)", speedup, 3,
                     opts);
    printMetricTable(study.singleThreaded,
                     "normalized LLC energy (E_nvm / E_sram)", energy,
                     3, opts);
    printMetricTable(study.singleThreaded, "normalized ED^2P", ed2p, 3,
                     opts);

    banner(figName + "b: multi-threaded workloads (" +
           toString(study.mode) + ")");
    printMetricTable(study.multiThreaded,
                     "normalized speedup (T_sram / T_nvm)", speedup, 3,
                     opts);
    printMetricTable(study.multiThreaded,
                     "normalized LLC energy (E_nvm / E_sram)", energy,
                     3, opts);
    printMetricTable(study.multiThreaded, "normalized ED^2P", ed2p, 3,
                     opts);
}

} // namespace nvmcache::bench

#endif // NVMCACHE_BENCH_FIG_COMMON_HH
