/**
 * @file
 * Ablation of the modeling heuristics: leave-one-out accuracy.
 *
 * For every *reported* parameter of every Table II cell, we blank
 * that parameter, re-derive it with the heuristic engine, and measure
 * the relative error against the true (reported) value — separately
 * per heuristic. This quantifies the paper's preference order
 * H1 > H2 > H3 with data instead of intuition, and doubles as an
 * error bound on the released starred/daggered values.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "nvm/heuristics.hh"
#include "nvm/model_library.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Ablation: leave-one-out heuristic accuracy");

    std::vector<CellSpec> refs = rawCells();
    for (const CellSpec &seed : archetypeSeeds())
        refs.push_back(seed);
    HeuristicEngine engine(refs);

    static const CellField kFields[] = {
        CellField::CellSizeF2, CellField::ReadCurrent,
        CellField::ReadVoltage, CellField::ReadPower,
        CellField::ReadEnergy, CellField::ResetCurrent,
        CellField::ResetVoltage, CellField::ResetPulse,
        CellField::ResetEnergy, CellField::SetCurrent,
        CellField::SetVoltage, CellField::SetPulse,
        CellField::SetEnergy,
    };

    Accumulator err_h1, err_h2, err_h3;
    Table table("leave-one-out re-derivations");
    table.setHeader({"cell.field", "method", "true", "derived",
                     "rel err %"});
    table.setColor(opts.color);

    for (const CellSpec &cell : rawCells()) {
        for (CellField f : kFields) {
            const CellParam &truth = cell.field(f);
            if (!truth.known() || truth.prov != Provenance::Reported)
                continue;

            CellSpec blanked = cell;
            blanked.field(f) = CellParam();

            CompletionStep step;
            const char *method = nullptr;
            Accumulator *bucket = nullptr;
            if (engine.tryElectrical(blanked, f, step)) {
                method = "H1";
                bucket = &err_h1;
            } else if (engine.tryInterpolation(blanked, f, step)) {
                method = "H2";
                bucket = &err_h2;
            } else if (engine.trySimilarity(blanked, f, step)) {
                method = "H3";
                bucket = &err_h3;
            } else {
                continue; // nothing can derive it
            }

            const double rel =
                std::abs(step.value - truth.get()) / truth.get();
            bucket->add(rel);
            table.startRow(cell.name + "." + toString(f));
            table.addCell(method);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3g", truth.get());
            table.addCell(buf);
            std::snprintf(buf, sizeof(buf), "%.3g", step.value);
            table.addCell(buf);
            table.addCell(rel * 100.0, 1);
        }
    }

    if (opts.csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);

    auto report = [](const char *name, const Accumulator &acc) {
        std::printf("%s: n=%zu, mean rel err %.1f%%, worst %.1f%%\n",
                    name, acc.count(), acc.average() * 100.0,
                    acc.maximum() * 100.0);
    };
    std::printf("\n");
    report("H1 electrical   ", err_h1);
    report("H2 interpolation", err_h2);
    report("H3 similarity   ", err_h3);
    std::printf("(the paper prefers H1 > H2 > H3; the mean errors "
                "above should respect that order)\n");
    opts.writeStats();
    return 0;
}
