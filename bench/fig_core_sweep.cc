/**
 * @file
 * Regenerates the paper's §V-C sensitivity study: multi-core systems
 * (1 -> 32 cores) with fixed-area NVM LLCs, compared against a
 * single-core SRAM baseline doing the same total work. Prints one
 * speedup series and one normalized-energy series per workload.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/study.hh"
#include "util/table.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("SV-C core sweep: fixed-area LLCs, baseline = "
                  "1-core SRAM");

    // The technologies the paper's SV-C discussion revolves around.
    const std::vector<std::string> techs{"Umeki", "Jan",      "Xue",
                                         "Hayakawa", "Zhang", "SRAM"};
    const std::vector<std::string> workloads{"ft", "cg", "mg", "sp",
                                             "lu"};
    std::vector<std::uint32_t> cores{1, 2, 4, 8, 16, 32};
    if (opts.quick)
        cores = {1, 4};

    ExperimentRunner runner;
    runner.setJobs(opts.jobs);
    runner.setShards(opts.shards);
    CoreSweepStudy study = runCoreSweep(workloads, techs, cores,
                                        runner);

    for (const std::string &w : workloads) {
        Table speedup("speedup vs 1-core SRAM: " + w);
        Table energy("LLC energy vs 1-core SRAM: " + w);
        std::vector<std::string> header{"tech"};
        for (auto c : cores)
            header.push_back(std::to_string(c) + "c");
        speedup.setHeader(header);
        energy.setHeader(header);
        speedup.setHeatmap(Table::Heatmap::PerColumn);
        energy.setHeatmap(Table::Heatmap::PerColumn);
        speedup.setColor(opts.color);
        energy.setColor(opts.color);

        for (const std::string &t : techs) {
            speedup.startRow(t);
            energy.startRow(t);
            for (auto c : cores) {
                const CoreSweepPoint &p = study.at(w, t, c);
                speedup.addCell(p.speedupVsBaseline, 2);
                energy.addCell(p.normEnergy, 2);
            }
        }
        if (opts.csv) {
            std::cout << speedup.toCsv() << energy.toCsv();
        } else {
            speedup.print(std::cout);
            std::cout << "\n";
            energy.print(std::cout);
            std::cout << "\n";
        }
    }

    std::printf("Expected shapes (paper SV-C): dense Hayakawa_R/Xue_S "
                "lead performance as cores grow;\nJan_S wins energy "
                "only where its 1 MB capacity does not throttle "
                "runtime;\nUmeki_S trails on energy because its "
                "slower runs accumulate leakage.\n");
    opts.writeStats(aggregateSimStats(study));
    return 0;
}
