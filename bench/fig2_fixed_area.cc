/**
 * @file
 * Regenerates paper Figure 2: speedup, LLC energy, and ED^2P of every
 * NVM-based LLC versus the SRAM baseline under the *fixed-area*
 * strategy — every technology fills the SRAM baseline's 6.55 mm^2
 * budget, so the dense NVMs field 8-128 MB of capacity (Table III,
 * bottom block).
 */

#include <cstdio>

#include "bench/fig_common.hh"
#include "util/units.hh"

using namespace nvmcache;
using namespace nvmcache::bench;

int
main(int argc, char **argv)
{
    const auto opts = HarnessOptions::parse(argc, argv);
    ExperimentRunner runner;
    runner.setJobs(opts.jobs);
    runner.setShards(opts.shards);

    banner("Figure 2: Gainestown with fixed-area LLC");
    std::printf("Capacities at the 6.55 mm^2 budget:\n  ");
    for (const LlcModel &m :
         publishedLlcModels(CapacityMode::FixedArea))
        std::printf("%s=%.0fMB ", m.citationName().c_str(),
                    toMB(m.capacityBytes));
    std::printf("\n");

    FigureStudy study = runFigureStudy(CapacityMode::FixedArea, runner,
                                       opts.quick ? 0.25 : 1.0);
    printFigure(study, "Fig 2", opts);
    opts.writeStats(aggregateSimStats(study));
    return 0;
}
