/**
 * @file
 * Extension bench: cache-organization sensitivity of the circuit
 * estimator — the kind of NVSim design-space sweep the paper's
 * methodology section presumes (mat size and associativity choices
 * sit behind every Table III number). Estimator-only, so it runs in
 * milliseconds.
 *
 * Sweeps mat dimensions and associativity for one technology per
 * class and reports how latency, energy and area move.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "nvm/model_library.hh"
#include "nvsim/estimator.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Extension: cache-organization sensitivity "
                  "(circuit estimator)");

    Estimator estimator;
    const char *cells[] = {"Kang", "Chung", "Zhang", "SRAM"};

    // --- mat size sweep -------------------------------------------
    {
        Table table("mat (subarray) size sweep, 2 MB, 16-way");
        table.setHeader({"cell.mat", "area[mm^2]", "read[ns]",
                         "write[ns]", "Ehit[nJ]", "leak[W]"});
        table.setColor(opts.color);
        for (const char *name : cells) {
            const CellSpec &cell = std::string(name) == "SRAM"
                                       ? sramBaselineCell()
                                       : publishedCell(name);
            for (std::uint32_t rows : {256u, 512u, 1024u}) {
                CacheOrgConfig org;
                org.matRows = rows;
                org.matCols = rows;
                LlcModel m = estimator.estimate(cell, org);
                table.startRow(std::string(name) + "." +
                               std::to_string(rows) + "x" +
                               std::to_string(rows));
                table.addCell(toMm2(m.area), 3);
                table.addCell(toNs(m.readLatency), 3);
                table.addCell(toNs(m.writeLatency()), 3);
                table.addCell(toNJ(m.eHit), 3);
                table.addCell(m.leakage, 3);
            }
        }
        if (opts.csv)
            std::cout << table.toCsv();
        else
            table.print(std::cout);
        std::printf("\nExpected: bigger mats amortize peripherals "
                    "(area/leakage drop) but lengthen word/bitlines "
                    "(latency and bitline energy rise).\n\n");
    }

    // --- associativity sweep ---------------------------------------
    {
        Table table("associativity sweep, 2 MB (tag-energy effect)");
        table.setHeader({"cell.assoc", "Emiss[nJ]", "Ehit[nJ]",
                         "tag[ns]"});
        table.setColor(opts.color);
        for (const char *name : cells) {
            const CellSpec &cell = std::string(name) == "SRAM"
                                       ? sramBaselineCell()
                                       : publishedCell(name);
            for (std::uint32_t assoc : {8u, 16u, 32u}) {
                CacheOrgConfig org;
                org.associativity = assoc;
                LlcModel m = estimator.estimate(cell, org);
                table.startRow(std::string(name) + "." +
                               std::to_string(assoc) + "w");
                table.addCell(toNJ(m.eMiss), 4);
                table.addCell(toNJ(m.eHit), 4);
                table.addCell(toNs(m.tagLatency), 3);
            }
        }
        if (opts.csv)
            std::cout << table.toCsv();
        else
            table.print(std::cout);
        std::printf("\nExpected: tag (and thus miss) energy scales "
                    "with the ways probed per lookup.\n");
    }
    opts.writeStats();
    return 0;
}
