/**
 * @file
 * Wall-clock benchmark of the parallel experiment engine: runs the
 * quick Figure 1 study (fixed-capacity, traceScale 0.25) serially
 * (jobs=1) and at increasing job counts, reports the wall-clock time,
 * speedup, and memoization counters for each, and cross-checks that
 * every configuration produced identical study results.
 *
 *   microbench_parallel [--jobs N] [--scale S] [--quick]
 *
 * --jobs caps the largest configuration measured (default:
 * defaultJobs(), i.e. NVMCACHE_JOBS or the hardware thread count);
 * --scale overrides the trace scale; --quick drops it to 0.05 for a
 * smoke run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "core/study.hh"
#include "util/parallel.hh"

using namespace nvmcache;
using namespace nvmcache::bench;

namespace {

struct Measurement
{
    unsigned jobs = 1;
    double seconds = 0.0;
    RunnerStats stats;
    FigureStudy study;
};

Measurement
measure(unsigned jobs, double scale, unsigned shards = 0)
{
    // Fresh runner per configuration: an empty memo, so each timing
    // pays for every simulation exactly once.
    Measurement m;
    m.jobs = jobs;
    ExperimentRunner runner;
    runner.setJobs(jobs);
    runner.setShards(shards);
    const auto start = std::chrono::steady_clock::now();
    m.study = runFigureStudy(CapacityMode::FixedCapacity, runner, scale);
    const auto stop = std::chrono::steady_clock::now();
    m.seconds = std::chrono::duration<double>(stop - start).count();
    m.stats = runner.runnerStats();
    return m;
}

bool
sameResults(const std::vector<TechSweep> &a,
            const std::vector<TechSweep> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].results.size() != b[i].results.size())
            return false;
        for (std::size_t j = 0; j < a[i].results.size(); ++j) {
            const RunResult &ra = a[i].results[j];
            const RunResult &rb = b[i].results[j];
            // Bit-identical, not approximately equal: the engine
            // promises jobs has no effect on any result.
            if (ra.speedup != rb.speedup ||
                ra.normEnergy != rb.normEnergy ||
                ra.normEd2p != rb.normEd2p ||
                ra.stats.seconds != rb.stats.seconds ||
                ra.stats.llcEnergy() != rb.stats.llcEnergy())
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = HarnessOptions::parse(argc, argv);
    double scale = opts.quick ? 0.05 : 0.25;
    unsigned max_jobs = opts.jobs ? opts.jobs : defaultJobs();
    for (int i = 1; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--scale"))
            scale = std::atof(argv[i + 1]);

    banner("Parallel experiment engine: quick Fig 1 sweep "
           "(fixed-capacity, traceScale " + std::to_string(scale) +
           ")");
    std::printf("hardware threads: %u, max jobs measured: %u\n\n",
                std::max(1u, std::thread::hardware_concurrency()),
                max_jobs);

    std::vector<unsigned> configs{1};
    for (unsigned j = 2; j < max_jobs; j *= 2)
        configs.push_back(j);
    if (max_jobs > 1)
        configs.push_back(max_jobs);

    std::printf("%-8s %-12s %-10s %-12s %-10s\n", "jobs", "wall[s]",
                "speedup", "simulations", "memo hits");
    Measurement serial;
    bool identical = true;
    for (unsigned jobs : configs) {
        Measurement m = measure(jobs, scale);
        if (jobs == 1)
            serial = m;
        else
            identical = identical &&
                        sameResults(serial.study.singleThreaded,
                                    m.study.singleThreaded) &&
                        sameResults(serial.study.multiThreaded,
                                    m.study.multiThreaded);
        std::printf("%-8u %-12.2f %-10.2f %-12llu %-10llu\n", m.jobs,
                    m.seconds, serial.seconds / m.seconds,
                    (unsigned long long)m.stats.simulations,
                    (unsigned long long)m.stats.memoHits);
    }

    // Intra-run threading: same sweep, jobs pinned to 1, the LLC of
    // each run set-sharded instead. Exercises the orthogonal knob and
    // re-checks the same bit-identity promise.
    std::printf("\n%-8s %-12s %-10s\n", "shards", "wall[s]",
                "speedup");
    for (unsigned shards : {2u, 4u}) {
        const Measurement m = measure(1, scale, shards);
        identical = identical &&
                    sameResults(serial.study.singleThreaded,
                                m.study.singleThreaded) &&
                    sameResults(serial.study.multiThreaded,
                                m.study.multiThreaded);
        std::printf("%-8u %-12.2f %-10.2f\n", shards, m.seconds,
                    serial.seconds / m.seconds);
    }

    std::printf("\nresults bit-identical across job and shard "
                "counts: %s\n",
                identical ? "yes" : "NO — DETERMINISM BUG");
    opts.writeStats();
    return identical ? 0 : 1;
}
