/**
 * @file
 * Regenerates paper Table V: the 20-workload suite with each
 * workload's LLC misses-per-kilo-instruction, measured on the
 * baseline system (4-core Gainestown, 2 MB SRAM LLC).
 *
 * The paper selected workloads with LLC mpki > 5 to stress the LLC;
 * the harness flags any workload whose synthetic stand-in falls
 * under that bar.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "nvsim/published.hh"
#include "util/table.hh"
#include "workload/suite.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Table V: workload suite and measured LLC mpki");

    ExperimentRunner runner;
    const LlcModel &sram =
        publishedLlcModel("SRAM", CapacityMode::FixedCapacity);

    Table table("Workloads (LLC mpki measured on SRAM baseline)");
    table.setHeader({"benchmark", "suite", "threads", "paper mpki",
                     "measured mpki", "LLC rd miss%", "instr (M)",
                     "description"});
    table.setColor(opts.color);

    for (const BenchmarkSpec &spec : benchmarkSuite()) {
        SimStats stats = runner.runOne(spec, sram);
        const double measured = stats.llcMpki();
        table.startRow(spec.name);
        table.addCell(spec.suite);
        table.addCell(double(spec.defaultThreads), 0);
        table.addCell(spec.paperMpki, 2);
        table.addCell(measured, 2);
        table.addCell(100.0 * stats.llc.demandMisses /
                          std::max<std::uint64_t>(1,
                                                  stats.llc.demandReads),
                      1);
        table.addCell(double(stats.instructions) / 1e6, 1);
        table.addCell(spec.description);
        if (measured < 5.0)
            std::fprintf(stderr,
                         "note: %s measured mpki %.2f below the "
                         "paper's >5 selection bar\n",
                         spec.name.c_str(), measured);
    }

    if (opts.csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);
    opts.writeStats();
    return 0;
}
