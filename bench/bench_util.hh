/**
 * @file
 * Shared helpers for the bench harness binaries: every binary
 * regenerates one of the paper's tables or figures and prints it in a
 * comparable layout. "--csv" switches any harness to CSV output.
 */

#ifndef NVMCACHE_BENCH_BENCH_UTIL_HH
#define NVMCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/metrics.hh"

namespace nvmcache::bench {

/** Parse common harness flags. */
struct HarnessOptions
{
    bool csv = false;
    bool color = true;
    bool quick = false; ///< trims sweeps for smoke runs
    unsigned jobs = 0;  ///< 0 = engine default (NVMCACHE_JOBS / cores)
    std::string statsOut;      ///< "" = no structured report
    StatsFormat statsFormat = StatsFormat::Json;

    static HarnessOptions
    parse(int argc, char **argv)
    {
        HarnessOptions o;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--csv")) {
                o.csv = true;
                o.color = false;
            } else if (!std::strcmp(argv[i], "--no-color")) {
                o.color = false;
            } else if (!std::strcmp(argv[i], "--quick")) {
                o.quick = true;
            } else if (!std::strcmp(argv[i], "--jobs") &&
                       i + 1 < argc) {
                const long n = std::strtol(argv[++i], nullptr, 10);
                if (n > 0)
                    o.jobs = unsigned(n);
            } else if (!std::strcmp(argv[i], "--stats-out") &&
                       i + 1 < argc) {
                o.statsOut = argv[++i];
            } else if (!std::strcmp(argv[i], "--stats-format") &&
                       i + 1 < argc) {
                o.statsFormat = parseStatsFormat(argv[++i]);
            } else if (!std::strcmp(argv[i], "--progress")) {
                setProgressEnabled(true);
            }
        }
        return o;
    }

    /**
     * Write the harness's structured run report if --stats-out was
     * given: the process-wide engine metrics (runner.*, estimator.*,
     * phase.*) plus, optionally, the study's aggregated per-run
     * simulation detail under "study.".
     */
    void
    writeStats(const StatsSnapshot &studyAggregate = {}) const
    {
        if (statsOut.empty())
            return;
        StatsSnapshot report = MetricsRegistry::global().snapshot();
        report.mergeSum(studyAggregate.withPrefix("study"));
        writeStatsFile(statsOut, report, statsFormat);
        std::fprintf(stderr, "stats written to %s\n",
                     statsOut.c_str());
    }
};

inline void
banner(const std::string &what)
{
    std::printf("\n==============================================="
                "=================\n");
    std::printf("  %s\n", what.c_str());
    std::printf("================================================"
                "================\n\n");
}

} // namespace nvmcache::bench

#endif // NVMCACHE_BENCH_BENCH_UTIL_HH
