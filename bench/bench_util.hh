/**
 * @file
 * Shared helpers for the bench harness binaries: every binary
 * regenerates one of the paper's tables or figures and prints it in a
 * comparable layout. "--csv" switches any harness to CSV output.
 */

#ifndef NVMCACHE_BENCH_BENCH_UTIL_HH
#define NVMCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace nvmcache::bench {

/** Parse common harness flags. */
struct HarnessOptions
{
    bool csv = false;
    bool color = true;
    bool quick = false; ///< trims sweeps for smoke runs
    unsigned jobs = 0;  ///< 0 = engine default (NVMCACHE_JOBS / cores)

    static HarnessOptions
    parse(int argc, char **argv)
    {
        HarnessOptions o;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--csv")) {
                o.csv = true;
                o.color = false;
            } else if (!std::strcmp(argv[i], "--no-color")) {
                o.color = false;
            } else if (!std::strcmp(argv[i], "--quick")) {
                o.quick = true;
            } else if (!std::strcmp(argv[i], "--jobs") &&
                       i + 1 < argc) {
                const long n = std::strtol(argv[++i], nullptr, 10);
                if (n > 0)
                    o.jobs = unsigned(n);
            }
        }
        return o;
    }
};

inline void
banner(const std::string &what)
{
    std::printf("\n==============================================="
                "=================\n");
    std::printf("  %s\n", what.c_str());
    std::printf("================================================"
                "================\n\n");
}

} // namespace nvmcache::bench

#endif // NVMCACHE_BENCH_BENCH_UTIL_HH
