/**
 * @file
 * Shared helpers for the bench harness binaries: every binary
 * regenerates one of the paper's tables or figures and prints it in a
 * comparable layout. "--csv" switches any harness to CSV output.
 */

#ifndef NVMCACHE_BENCH_BENCH_UTIL_HH
#define NVMCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "store/result_store.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/trace_events.hh"

namespace nvmcache::bench {

/**
 * Parse common harness flags (via the shared util/args.hh parser).
 * Unknown flags are left alone — several harnesses parse their own on
 * top of these.
 */
struct HarnessOptions
{
    bool csv = false;
    bool color = true;
    bool quick = false; ///< trims sweeps for smoke runs
    unsigned jobs = 0;  ///< 0 = engine default (NVMCACHE_JOBS / cores)
    unsigned shards = 0; ///< 0 = engine default (NVMCACHE_SHARDS / 1)
    std::string statsOut;      ///< "" = no structured report
    StatsFormat statsFormat = StatsFormat::Json;
    std::string traceOut;      ///< "" = tracing off
    std::string storeDir;      ///< "" = persistent store off

    static HarnessOptions
    parse(int argc, char **argv)
    {
        HarnessOptions o;
        try {
            ArgParser parser(argc, argv);
            if (parser.flag("--csv")) {
                o.csv = true;
                o.color = false;
            }
            if (parser.flag("--no-color"))
                o.color = false;
            o.quick = parser.flag("--quick");
            o.jobs = parser.u32("--jobs", 0);
            o.shards = parser.u32("--shards", 0);
            o.statsOut = parser.str("--stats-out", "");
            o.statsFormat =
                parseStatsFormat(parser.str("--stats-format", "json"));
            o.traceOut = parser.str("--trace-out", "");
            if (!o.traceOut.empty())
                setTracingEnabled(true);
            o.storeDir = parser.str("--store-dir", "");
            if (o.storeDir.empty()) {
                const char *env = std::getenv("NVMCACHE_STORE");
                if (env)
                    o.storeDir = env;
            }
            if (!o.storeDir.empty())
                ResultStore::setGlobal(o.storeDir);
            if (parser.flag("--progress"))
                setProgressEnabled(true);
        } catch (const std::exception &e) {
            fatal(e.what());
        }
        return o;
    }

    /**
     * Write the harness's structured run report if --stats-out was
     * given: the process-wide engine metrics (runner.*, estimator.*,
     * phase.*) plus, optionally, the study's aggregated per-run
     * simulation detail under "study.".
     */
    void
    writeStats(const StatsSnapshot &studyAggregate = {}) const
    {
        writeTrace(); // every harness ends here; piggyback the dump
        if (statsOut.empty())
            return;
        StatsSnapshot report = MetricsRegistry::global().snapshot();
        report.mergeSum(studyAggregate.withPrefix("study"));
        writeStatsFile(statsOut, report, statsFormat);
        std::fprintf(stderr, "stats written to %s\n",
                     statsOut.c_str());
    }

    /** Dump the collected span/counter trace if --trace-out was given. */
    void
    writeTrace() const
    {
        if (traceOut.empty())
            return;
        writeTraceFile(traceOut);
        std::fprintf(stderr, "trace written to %s\n",
                     traceOut.c_str());
    }
};

inline void
banner(const std::string &what)
{
    std::printf("\n==============================================="
                "=================\n");
    std::printf("  %s\n", what.c_str());
    std::printf("================================================"
                "================\n\n");
}

} // namespace nvmcache::bench

#endif // NVMCACHE_BENCH_BENCH_UTIL_HH
