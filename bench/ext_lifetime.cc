/**
 * @file
 * Extension bench (paper §VII future work): characterize how
 * architecture-agnostic workload features affect NVM LLC *lifetime*.
 *
 * For every characterized workload we measure the LLC write traffic
 * on the 2 MB fixed-capacity system, estimate the write imbalance
 * from the workload's 90% write footprint, and project the lifetime
 * of a PCRAM (Kang_P) and an RRAM (Zhang_R) LLC — bare and with
 * intra-set wear-leveling (paper ref [20]). Finally the Fig 3
 * correlation framework is reused with lifetime as the outcome.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "correlate/framework.hh"
#include "nvm/endurance.hh"
#include "prism/metrics.hh"
#include "util/table.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Extension (SVII): workload features vs NVM LLC "
                  "lifetime");

    ExperimentRunner runner;
    const LlcModel &kang =
        publishedLlcModel("Kang", CapacityMode::FixedCapacity);
    const std::uint64_t lines = kang.capacityBytes / 64;

    Table table("projected LLC lifetime (fixed-capacity 2 MB)");
    table.setHeader({"workload", "LLC writes/s (M)", "imbalance",
                     "Kang_P [days]", "Kang_P +WL [days]",
                     "Zhang_R [years]"});
    table.setHeatmap(Table::Heatmap::PerColumn);
    table.setColor(opts.color);

    CorrelationDataset dataset;
    dataset.featureNames = WorkloadFeatures::featureNames();

    for (const BenchmarkSpec *spec : characterizedBenchmarks()) {
        // Feature pass.
        auto traces = buildTraces(*spec);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        WorkloadFeatures f = characterize(ptrs);

        // Traffic pass.
        SimStats stats = runner.runOne(*spec, kang);
        LifetimeInputs in;
        in.llcWrites = stats.llc.fills + stats.llc.writebacksIn;
        in.seconds = stats.seconds;
        in.cacheLines = lines;
        in.writeImbalance = imbalanceFromFootprints(
            f.writes.unique, f.writes.footprint90, lines);

        auto pcram = estimateLifetime(NvmClass::PCRAM, in);
        auto pcram_wl =
            estimateLifetime(NvmClass::PCRAM, in, 1.0 / 16.0);
        auto rram = estimateLifetime(NvmClass::RRAM, in);

        table.startRow(spec->name);
        table.addCell(double(in.llcWrites) / in.seconds / 1e6, 1);
        table.addCell(in.writeImbalance, 0);
        table.addCell(pcram.lifetimeSeconds / 86400.0, 2);
        table.addCell(pcram_wl.lifetimeSeconds / 86400.0, 2);
        table.addCell(rram.lifetimeYears, 2);

        dataset.workloads.push_back(spec->name);
        dataset.features.push_back(f.featureVector());
        // Correlate against log-lifetime (it spans decades) and keep
        // the "speedup" slot occupied by the raw write rate.
        dataset.energy.push_back(
            std::log10(pcram.lifetimeSeconds));
        dataset.speedup.push_back(double(in.llcWrites) / in.seconds);
    }

    if (opts.csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);

    CorrelationResult corr = correlateFeatures(dataset);
    // Relabel the outcome columns for this bench's semantics.
    std::cout << "\nfeature correlation (energy column = "
                 "log10 PCRAM lifetime, speedup column = LLC "
                 "write rate):\n";
    std::cout << renderHeatmap(corr, "features vs lifetime",
                               opts.color);

    auto rank = corr.rankByEnergy();
    std::printf("\nstrongest lifetime predictors: ");
    for (std::size_t i = 0; i < 3; ++i)
        std::printf("%s(%+.2f) ",
                    corr.featureNames[rank[i]].c_str(),
                    corr.energyCorr[rank[i]]);
    std::printf("\n(expect write-footprint/entropy features to "
                "dominate: concentrated writes wear the hot lines "
                "out)\n");
    opts.writeStats();
    return 0;
}
