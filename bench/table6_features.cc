/**
 * @file
 * Regenerates paper Table VI: the architecture-agnostic workload
 * features of the 16 PRISM-compatible workloads — global/local
 * read/write entropy, unique footprints, 90% footprints, and access
 * totals — measured by this library's characterizer on the synthetic
 * traces, printed beside the paper's published values.
 *
 * The paper's footprints/totals are full-run virtual-address counts;
 * ours are line-granularity counts over ~1000x-scaled traces, so the
 * comparison to make is *per-column ordering across workloads*, not
 * absolute magnitude (see EXPERIMENTS.md).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "prism/metrics.hh"
#include "util/table.hh"
#include "workload/suite.hh"

using namespace nvmcache;

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    bench::banner("Table VI: workload features (PRISM-style)");

    Table table("Measured features (paper values in parentheses)");
    table.setHeader({"workload", "H_rg", "H_rl", "H_wg", "H_wl",
                     "r_uniq(K)", "w_uniq(K)", "90%ft_r(K)",
                     "90%ft_w(K)", "r_tot(M)", "w_tot(M)"});
    table.setHeatmap(Table::Heatmap::PerColumn);
    table.setColor(opts.color);

    auto cell = [&](double measured, double paper, double scale,
                    int prec) {
        char buf[64];
        if (std::isnan(paper))
            std::snprintf(buf, sizeof(buf), "%.*f", prec, measured);
        else
            std::snprintf(buf, sizeof(buf), "%.*f (%.*f)", prec,
                          measured, prec, paper * scale);
        table.addCell(buf, measured);
    };

    for (const BenchmarkSpec *spec : characterizedBenchmarks()) {
        auto traces = buildTraces(*spec);
        std::vector<TraceSource *> ptrs;
        for (auto &t : traces)
            ptrs.push_back(t.get());
        WorkloadFeatures f = characterize(ptrs);

        table.startRow(spec->name);
        cell(f.reads.globalEntropy, spec->paper.globalReadEntropy,
             1.0, 2);
        cell(f.reads.localEntropy, spec->paper.localReadEntropy, 1.0,
             2);
        cell(f.writes.globalEntropy, spec->paper.globalWriteEntropy,
             1.0, 2);
        cell(f.writes.localEntropy, spec->paper.localWriteEntropy,
             1.0, 2);
        cell(double(f.reads.unique) / 1e3,
             spec->paper.uniqueReads / 1e3 / 1000.0, 1.0, 1);
        cell(double(f.writes.unique) / 1e3,
             spec->paper.uniqueWrites / 1e3 / 1000.0, 1.0, 1);
        cell(double(f.reads.footprint90) / 1e3,
             spec->paper.footprint90Read / 1e3 / 1000.0, 1.0, 1);
        cell(double(f.writes.footprint90) / 1e3,
             spec->paper.footprint90Write / 1e3 / 1000.0, 1.0, 1);
        cell(double(f.reads.total) / 1e6,
             spec->paper.totalReads / 1e6 / 1000.0, 1.0, 2);
        cell(double(f.writes.total) / 1e6,
             spec->paper.totalWrites / 1e6 / 1000.0, 1.0, 2);
    }

    if (opts.csv)
        std::cout << table.toCsv();
    else
        table.print(std::cout);
    std::printf("\nPaper values in parentheses are scaled by the "
                "1/1000 trace-length factor.\n");
    opts.writeStats();
    return 0;
}
