/**
 * @file
 * Regenerates paper Figure 4 and the §VI analysis.
 *
 * Part 1 (general-purpose system): the Fig 3 framework over all 16
 * characterized workloads — the paper's finding is that LLC energy
 * and execution time correlate most strongly with total reads/writes.
 *
 * Part 2 (specialized/AI system, Fig 4a-f): the same framework over
 * only the three cpu2017 AI workloads, for Jan_S, Xue_S and
 * Hayakawa_R in fixed-capacity and fixed-area modes — the paper's
 * finding is that entropy and unique/90% footprints dominate while
 * total reads/writes correlate negligibly.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/study.hh"

using namespace nvmcache;

namespace {

void
printStudy(const CorrelationStudy &study, const char *what, bool color)
{
    for (const TechCorrelation &tc : study.perTech) {
        std::string title = std::string(what) + ": " + tc.tech + "_" +
                            classSubscript(publishedLlcModel(
                                               tc.tech,
                                               CapacityMode::
                                                   FixedCapacity)
                                               .klass) +
                            ", " + toString(tc.mode);
        if (tc.outcomes == OutcomeKind::Absolute)
            title += "  [outcome columns: absolute LLC energy (J) "
                     "and execution time (s)]";
        std::cout << renderHeatmap(tc.result, title, color) << "\n";

        auto rank = tc.result.rankByEnergy();
        std::printf("  strongest energy predictors: ");
        for (std::size_t i = 0; i < 3 && i < rank.size(); ++i)
            std::printf("%s(|r|=%.2f) ",
                        tc.result.featureNames[rank[i]].c_str(),
                        std::abs(tc.result.energyCorr[rank[i]]));
        std::printf("\n\n");
    }
}

double
meanAbs(const std::vector<double> &v, std::size_t i)
{
    return std::abs(v[i]);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::HarnessOptions::parse(argc, argv);
    ExperimentRunner runner;
    runner.setJobs(opts.jobs);
    runner.setShards(opts.shards);
    const std::vector<std::string> techs{"Jan", "Xue", "Hayakawa"};
    const std::vector<CapacityMode> modes{CapacityMode::FixedCapacity,
                                          CapacityMode::FixedArea};

    bench::banner("SVI part 1: general-purpose system "
                  "(all 16 characterized workloads)");
    CorrelationStudy general =
        runCorrelationStudy(false, techs, modes, runner);
    printStudy(general, "general", opts.color);

    // The paper's general-purpose claim: totals dominate.
    {
        double total_r = 0.0, other_r = 0.0;
        std::size_t nt = 0, no = 0;
        for (const TechCorrelation &tc : general.perTech) {
            for (std::size_t f = 0; f < tc.result.featureNames.size();
                 ++f) {
                bool is_total =
                    tc.result.featureNames[f] == "r_total" ||
                    tc.result.featureNames[f] == "w_total";
                (is_total ? total_r : other_r) +=
                    meanAbs(tc.result.energyCorr, f);
                ++(is_total ? nt : no);
            }
        }
        std::printf("mean |r| vs energy: totals %.2f, "
                    "all other features %.2f\n\n",
                    total_r / double(nt), other_r / double(no));
    }

    bench::banner("Fig 4a-f: AI-specialized system "
                  "(deepsjeng, leela, exchange2)");
    CorrelationStudy ai = runCorrelationStudy(true, techs, modes,
                                              runner);
    printStudy(ai, "AI", opts.color);

    // The paper's AI claim: entropy + unique/90% footprints dominate,
    // totals are negligible.
    {
        double total_r = 0.0, feature_r = 0.0;
        std::size_t nt = 0, nf = 0;
        for (const TechCorrelation &tc : ai.perTech) {
            for (std::size_t f = 0; f < tc.result.featureNames.size();
                 ++f) {
                const std::string &name = tc.result.featureNames[f];
                bool is_total =
                    name == "r_total" || name == "w_total";
                bool is_structure =
                    name == "H_wg" || name == "H_wl" ||
                    name == "w_uniq" || name == "90%ft_w";
                if (is_total) {
                    total_r += meanAbs(tc.result.energyCorr, f);
                    ++nt;
                } else if (is_structure) {
                    feature_r += meanAbs(tc.result.energyCorr, f);
                    ++nf;
                }
            }
        }
        std::printf("AI workloads, mean |r| vs energy: write-structure "
                    "features %.2f, totals %.2f\n",
                    feature_r / double(nf), total_r / double(nt));
        std::printf("(paper: ~0.99 for write entropy / footprints, "
                    "negligible for totals)\n");
    }
    // Correlation datasets carry no raw SimStats, so the report is
    // the engine-side view: memo rates, solver work, phase timings.
    opts.writeStats();
    return 0;
}
